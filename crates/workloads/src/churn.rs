//! Population churn: arrivals and departures between monitoring epochs.
//!
//! Warehouses are not static — pallets ship out and deliveries arrive. The
//! [`ChurnModel`] evolves an ID population between epochs with Poisson-like
//! departure/arrival counts, feeding the continuous-monitoring application.

use rfid_hash::Xoshiro256;
use rfid_system::TagId;

/// Churn rates per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Fraction of the current population departing per epoch.
    pub departure_fraction: f64,
    /// Expected arrivals per epoch.
    pub arrivals_per_epoch: f64,
}

impl ChurnModel {
    /// A quiet floor: 1 % departures, ~5 arrivals per epoch.
    pub fn quiet() -> Self {
        ChurnModel {
            departure_fraction: 0.01,
            arrivals_per_epoch: 5.0,
        }
    }

    /// A busy dock: 10 % departures, ~50 arrivals per epoch.
    pub fn busy() -> Self {
        ChurnModel {
            departure_fraction: 0.10,
            arrivals_per_epoch: 50.0,
        }
    }

    /// Evolves the population one epoch: returns `(remaining, departed,
    /// arrivals)`. Arrival IDs are fresh uniform EPCs guaranteed distinct
    /// from `current`.
    pub fn evolve(
        &self,
        current: &[TagId],
        rng: &mut Xoshiro256,
    ) -> (Vec<TagId>, Vec<TagId>, Vec<TagId>) {
        assert!((0.0..=1.0).contains(&self.departure_fraction));
        assert!(self.arrivals_per_epoch >= 0.0);
        let departures =
            ((current.len() as f64 * self.departure_fraction).round() as usize).min(current.len());
        let gone: std::collections::HashSet<usize> = rng
            .sample_indices(current.len(), departures)
            .into_iter()
            .collect();
        let mut remaining = Vec::with_capacity(current.len() - departures);
        let mut departed = Vec::with_capacity(departures);
        for (i, &id) in current.iter().enumerate() {
            if gone.contains(&i) {
                departed.push(id);
            } else {
                remaining.push(id);
            }
        }
        // Poisson-ish arrival count: round a jittered mean.
        let jitter = rng.unit_f64() * 2.0; // uniform in [0, 2) around mean 1
        let count = (self.arrivals_per_epoch * jitter).round() as usize;
        let existing: std::collections::HashSet<TagId> = current.iter().copied().collect();
        let mut arrivals = Vec::with_capacity(count);
        while arrivals.len() < count {
            let id = TagId::from_raw(rng.next_u64() as u32, rng.next_u64());
            if !existing.contains(&id) && !arrivals.contains(&id) {
                arrivals.push(id);
            }
        }
        (remaining, departed, arrivals)
    }
}

rfid_system::impl_json_struct!(ChurnModel {
    departure_fraction,
    arrivals_per_epoch
});

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<TagId> {
        (0..n).map(|i| TagId::from_raw(1, i)).collect()
    }

    #[test]
    fn evolve_partitions_the_population() {
        let model = ChurnModel {
            departure_fraction: 0.2,
            arrivals_per_epoch: 10.0,
        };
        let mut rng = Xoshiro256::seed_from_u64(1);
        let current = ids(100);
        let (remaining, departed, arrivals) = model.evolve(&current, &mut rng);
        assert_eq!(remaining.len() + departed.len(), 100);
        assert_eq!(departed.len(), 20);
        // Arrivals are fresh.
        let olds: std::collections::HashSet<_> = current.iter().collect();
        for a in &arrivals {
            assert!(!olds.contains(a));
        }
    }

    #[test]
    fn zero_churn_is_identity() {
        let model = ChurnModel {
            departure_fraction: 0.0,
            arrivals_per_epoch: 0.0,
        };
        let mut rng = Xoshiro256::seed_from_u64(2);
        let current = ids(50);
        let (remaining, departed, arrivals) = model.evolve(&current, &mut rng);
        assert_eq!(remaining, current);
        assert!(departed.is_empty());
        assert!(arrivals.is_empty());
    }

    #[test]
    fn full_departure_empties_the_floor() {
        let model = ChurnModel {
            departure_fraction: 1.0,
            arrivals_per_epoch: 0.0,
        };
        let mut rng = Xoshiro256::seed_from_u64(3);
        let (remaining, departed, _) = model.evolve(&ids(30), &mut rng);
        assert!(remaining.is_empty());
        assert_eq!(departed.len(), 30);
    }

    #[test]
    fn arrival_counts_track_the_mean() {
        let model = ChurnModel {
            departure_fraction: 0.0,
            arrivals_per_epoch: 20.0,
        };
        let mut rng = Xoshiro256::seed_from_u64(4);
        let current = ids(10);
        let total: usize = (0..200)
            .map(|_| model.evolve(&current, &mut rng).2.len())
            .sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 20.0).abs() < 2.0, "mean arrivals {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let model = ChurnModel::busy();
        let current = ids(100);
        let a = model.evolve(&current, &mut Xoshiro256::seed_from_u64(9));
        let b = model.evolve(&current, &mut Xoshiro256::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
