//! # rfid-workloads — tag populations and scenarios
//!
//! Generators for the tag populations the evaluation runs over, and the
//! serializable [`Scenario`] describing one experiment:
//!
//! * [`IdDistribution`] — uniform random EPC-96 IDs (the paper's general
//!   case, "without any assumption on the distribution of tag IDs"),
//!   sequential serials, clustered category prefixes (the enhanced-CPP
//!   best case), Zipf-weighted category mixes, and adversarial shared
//!   prefixes,
//! * [`PayloadKind`] — the `m`-bit information tags carry: a presence bit,
//!   random bits, battery levels, temperature readings,
//! * [`Scenario`] — `(n, distribution, payload, seed)` bundled, with
//!   [`Scenario::build_population`] producing the deterministic
//!   [`TagPopulation`] and [`Scenario::split_missing`] deriving missing-tag
//!   variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod ids;
pub mod payload;
pub mod scenario;

pub use churn::ChurnModel;
pub use ids::IdDistribution;
pub use payload::PayloadKind;
pub use scenario::Scenario;
