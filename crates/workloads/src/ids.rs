//! Tag-ID generators.
//!
//! The paper evaluates "a more general case without any assumption on the
//! distribution of tag IDs" — uniform random EPCs. The other distributions
//! here exercise the cases the paper discusses qualitatively: sequential
//! serials (fresh rolls of tags), clustered category prefixes (tags affixed
//! to the same class of items share a category ID — enhanced CPP's best
//! case), Zipf category mixes (realistic warehouses), and adversarial
//! shared prefixes.

use rfid_hash::Xoshiro256;
use rfid_system::id::{TagId, CLASS_BITS, MANAGER_BITS, SERIAL_BITS};

/// How tag IDs are distributed.
#[derive(Debug, Clone, PartialEq)]
pub enum IdDistribution {
    /// Fully random 96-bit EPCs (the paper's setting).
    UniformRandom,
    /// One category, sequential serials starting at `start`.
    Sequential {
        /// First serial number.
        start: u64,
    },
    /// `categories` equally likely categories with random serials: tags of
    /// the same category share the 60-bit prefix.
    Clustered {
        /// Number of distinct categories.
        categories: u32,
    },
    /// Categories drawn from a Zipf(`exponent`) law over `categories`
    /// categories (a few popular products dominate).
    Zipf {
        /// Number of distinct categories.
        categories: u32,
        /// Zipf exponent (1.0 = classic).
        exponent: f64,
    },
    /// All tags share the first `prefix_bits` bits; the rest is random.
    SharedPrefix {
        /// Length of the common prefix in bits.
        prefix_bits: u32,
    },
}

impl IdDistribution {
    /// Generates `n` distinct tag IDs deterministically from `rng`.
    pub fn generate(&self, n: usize, rng: &mut Xoshiro256) -> Vec<TagId> {
        let mut seen = std::collections::HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        let zipf = if let IdDistribution::Zipf {
            categories,
            exponent,
        } = self
        {
            Some(ZipfSampler::new(*categories, *exponent))
        } else {
            None
        };
        let mut serial_counter = match self {
            IdDistribution::Sequential { start } => *start,
            _ => 0,
        };
        while out.len() < n {
            let id = match self {
                IdDistribution::UniformRandom => {
                    TagId::from_raw(rng.next_u64() as u32, rng.next_u64())
                }
                IdDistribution::Sequential { .. } => {
                    let id = TagId::from_fields(
                        0x30,
                        1,
                        1,
                        serial_counter & ((1u64 << SERIAL_BITS) - 1),
                    );
                    serial_counter += 1;
                    id
                }
                IdDistribution::Clustered { categories } => {
                    let cat = rng.below(*categories as u64) as u32;
                    TagId::from_fields(
                        0x30,
                        cat % (1 << MANAGER_BITS),
                        cat % (1 << CLASS_BITS),
                        rng.next_u64() & ((1u64 << SERIAL_BITS) - 1),
                    )
                }
                IdDistribution::Zipf { .. } => {
                    let cat = zipf.as_ref().expect("sampler built above").sample(rng);
                    TagId::from_fields(
                        0x30,
                        cat % (1 << MANAGER_BITS),
                        cat % (1 << CLASS_BITS),
                        rng.next_u64() & ((1u64 << SERIAL_BITS) - 1),
                    )
                }
                IdDistribution::SharedPrefix { prefix_bits } => {
                    assert!(*prefix_bits <= 96, "prefix longer than an EPC");
                    // Fixed prefix of alternating bits, random remainder.
                    let fixed_hi: u32 = 0xAAAA_AAAA;
                    let fixed_lo: u64 = 0xAAAA_AAAA_AAAA_AAAA;
                    let (mut hi, mut lo) = (rng.next_u64() as u32, rng.next_u64());
                    let p = *prefix_bits;
                    if p >= 32 {
                        hi = fixed_hi;
                        let low_fixed = (p - 32).min(64);
                        if low_fixed > 0 {
                            let mask = if low_fixed == 64 {
                                u64::MAX
                            } else {
                                !(u64::MAX >> low_fixed)
                            };
                            lo = (fixed_lo & mask) | (lo & !mask);
                        }
                    } else if p > 0 {
                        let mask = !(u32::MAX >> p);
                        hi = (fixed_hi & mask) | (hi & !mask);
                    }
                    TagId::from_raw(hi, lo)
                }
            };
            if seen.insert(id) {
                out.push(id);
            }
        }
        out
    }
}

/// Zipf sampler over ranks `0..categories` by inverse-CDF on precomputed
/// cumulative weights.
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(categories: u32, exponent: f64) -> Self {
        assert!(categories > 0, "zipf over zero categories");
        assert!(exponent > 0.0, "non-positive zipf exponent");
        let mut cdf = Vec::with_capacity(categories as usize);
        let mut acc = 0.0;
        for rank in 1..=categories {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, rng: &mut Xoshiro256) -> u32 {
        let u = rng.unit_f64();
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

impl rfid_system::ToJson for IdDistribution {
    fn to_json(&self) -> rfid_system::Json {
        use rfid_system::Json;
        fn tagged(tag: &str, fields: Vec<(String, Json)>) -> Json {
            Json::Obj(vec![(tag.to_string(), Json::Obj(fields))])
        }
        match self {
            IdDistribution::UniformRandom => Json::str("UniformRandom"),
            IdDistribution::Sequential { start } => {
                tagged("Sequential", vec![("start".to_string(), start.to_json())])
            }
            IdDistribution::Clustered { categories } => tagged(
                "Clustered",
                vec![("categories".to_string(), categories.to_json())],
            ),
            IdDistribution::Zipf {
                categories,
                exponent,
            } => tagged(
                "Zipf",
                vec![
                    ("categories".to_string(), categories.to_json()),
                    ("exponent".to_string(), exponent.to_json()),
                ],
            ),
            IdDistribution::SharedPrefix { prefix_bits } => tagged(
                "SharedPrefix",
                vec![("prefix_bits".to_string(), prefix_bits.to_json())],
            ),
        }
    }
}

impl rfid_system::FromJson for IdDistribution {
    fn from_json(json: &rfid_system::Json) -> Result<Self, rfid_system::JsonError> {
        use rfid_system::{Json, JsonError};
        if let Json::Str(tag) = json {
            return match tag.as_str() {
                "UniformRandom" => Ok(IdDistribution::UniformRandom),
                other => Err(JsonError(format!(
                    "unknown IdDistribution variant '{other}'"
                ))),
            };
        }
        let fields = match json {
            Json::Obj(fields) if fields.len() == 1 => fields,
            other => return Err(JsonError(format!("malformed IdDistribution: {other}"))),
        };
        let (tag, body) = &fields[0];
        match tag.as_str() {
            "Sequential" => Ok(IdDistribution::Sequential {
                start: body.field("start")?,
            }),
            "Clustered" => Ok(IdDistribution::Clustered {
                categories: body.field("categories")?,
            }),
            "Zipf" => Ok(IdDistribution::Zipf {
                categories: body.field("categories")?,
                exponent: body.field("exponent")?,
            }),
            "SharedPrefix" => Ok(IdDistribution::SharedPrefix {
                prefix_bits: body.field("prefix_bits")?,
            }),
            other => Err(JsonError(format!(
                "unknown IdDistribution variant '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(11)
    }

    #[test]
    fn all_distributions_yield_n_distinct_ids() {
        let dists = [
            IdDistribution::UniformRandom,
            IdDistribution::Sequential { start: 5 },
            IdDistribution::Clustered { categories: 4 },
            IdDistribution::Zipf {
                categories: 10,
                exponent: 1.0,
            },
            IdDistribution::SharedPrefix { prefix_bits: 60 },
        ];
        for d in dists {
            let ids = d.generate(500, &mut rng());
            assert_eq!(ids.len(), 500, "{d:?}");
            let set: std::collections::HashSet<_> = ids.iter().collect();
            assert_eq!(set.len(), 500, "{d:?} produced duplicates");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = IdDistribution::UniformRandom;
        let a = d.generate(100, &mut rng());
        let b = d.generate(100, &mut rng());
        assert_eq!(a, b);
        let c = d.generate(100, &mut Xoshiro256::seed_from_u64(12));
        assert_ne!(a, c);
    }

    #[test]
    fn sequential_ids_share_category_and_count_up() {
        let ids = IdDistribution::Sequential { start: 10 }.generate(20, &mut rng());
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.serial(), 10 + i as u64);
            assert_eq!(id.category(), ids[0].category());
        }
    }

    #[test]
    fn clustered_ids_use_exactly_the_requested_categories() {
        let ids = IdDistribution::Clustered { categories: 3 }.generate(300, &mut rng());
        let cats: std::collections::HashSet<u64> = ids.iter().map(|i| i.category()).collect();
        assert_eq!(cats.len(), 3);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let ids = IdDistribution::Zipf {
            categories: 50,
            exponent: 1.2,
        }
        .generate(5_000, &mut rng());
        let mut counts = std::collections::HashMap::new();
        for id in &ids {
            *counts.entry(id.category()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = 5_000 / counts.len();
        assert!(max > 3 * avg, "head category {max} vs average {avg}");
    }

    #[test]
    fn shared_prefix_is_shared() {
        let ids = IdDistribution::SharedPrefix { prefix_bits: 32 }.generate(50, &mut rng());
        for id in &ids {
            assert_eq!(id.hi(), 0xAAAA_AAAA);
        }
        let ids = IdDistribution::SharedPrefix { prefix_bits: 48 }.generate(50, &mut rng());
        let first = ids[0].prefix_bits(48);
        for id in &ids {
            assert_eq!(id.prefix_bits(48), first);
        }
    }

    #[test]
    fn shared_prefix_zero_is_uniform() {
        let ids = IdDistribution::SharedPrefix { prefix_bits: 0 }.generate(10, &mut rng());
        let his: std::collections::HashSet<u32> = ids.iter().map(|i| i.hi()).collect();
        assert!(his.len() > 1);
    }

    #[test]
    fn uniform_ids_fill_the_high_bits_too() {
        let ids = IdDistribution::UniformRandom.generate(100, &mut rng());
        assert!(ids.iter().any(|i| i.hi() > u16::MAX as u32));
    }
}
