//! The content-addressed cell cache: a warm `sweep-cache` directory must
//! serve every job without touching the simulator, serve bit-identical
//! reports, and a changed code-version salt must invalidate every entry.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use rfid_bench::{Cell, SweepEngine};
use rfid_protocols::{PollingProtocol, TppConfig};
use rfid_system::to_json_string;
use rfid_workloads::Scenario;

/// A unique throwaway cache directory under the target dir. Uses the test
/// process id plus a per-process counter so concurrent test binaries and
/// repeated `#[test]` fns never collide; removed on drop.
struct TempCacheDir(PathBuf);

impl TempCacheDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = format!(
            "sweep-cache-test-{}-{}-{}",
            tag,
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        );
        let dir = std::env::temp_dir().join(unique);
        TempCacheDir(dir)
    }
}

impl Drop for TempCacheDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cells(factory: &'_ (dyn Fn() -> Box<dyn PollingProtocol> + Sync)) -> Vec<Cell<'_>> {
    [(50usize, 3u64), (70, 5)]
        .into_iter()
        .map(|(n, seed)| {
            Cell::new(
                "TPP",
                "",
                Scenario::uniform(n, 1).with_seed(seed),
                4,
                factory,
            )
        })
        .collect()
}

#[test]
fn warm_cache_skips_recompute_and_serves_identical_reports() {
    let dir = TempCacheDir::new("warm");
    let built = AtomicUsize::new(0);
    let counting = || -> Box<dyn PollingProtocol> {
        built.fetch_add(1, Ordering::Relaxed);
        Box::new(TppConfig::default().into_protocol())
    };

    // Cold run: every run constructs a protocol, nothing is served.
    let mut cold = SweepEngine::new().with_workers(2).with_cache_dir(&dir.0);
    let cold_reports = cold.run_cells(&cells(&counting));
    assert_eq!(cold.stats().cache_hits, 0);
    assert_eq!(
        built.load(Ordering::Relaxed),
        8,
        "2 cells x 4 runs construct 8 protocols"
    );

    // Warm run in a fresh engine over the same directory: every job is a
    // hit, the simulator is never touched, and the reports are bit-equal.
    built.store(0, Ordering::Relaxed);
    let mut warm = SweepEngine::new().with_workers(2).with_cache_dir(&dir.0);
    let warm_reports = warm.run_cells(&cells(&counting));
    assert_eq!(warm.stats().cache_hits, warm.stats().jobs);
    assert!(warm.stats().jobs > 0);
    assert_eq!(warm.stats().cache_hit_rate(), 1.0);
    assert_eq!(
        built.load(Ordering::Relaxed),
        0,
        "warm cache must not construct protocols"
    );

    let render = |r: &Vec<Vec<rfid_protocols::Report>>| {
        r.iter().flatten().map(to_json_string).collect::<Vec<_>>()
    };
    assert_eq!(render(&warm_reports), render(&cold_reports));
}

#[test]
fn changed_salt_invalidates_the_cache() {
    let dir = TempCacheDir::new("salt");
    let built = AtomicUsize::new(0);
    let counting = || -> Box<dyn PollingProtocol> {
        built.fetch_add(1, Ordering::Relaxed);
        Box::new(TppConfig::default().into_protocol())
    };

    let mut first = SweepEngine::new().with_cache_dir(&dir.0);
    first.run_cells(&cells(&counting));
    let cold_builds = built.load(Ordering::Relaxed);
    assert!(cold_builds > 0);

    // Same directory, different code-version salt: every entry misses.
    built.store(0, Ordering::Relaxed);
    let mut salted = SweepEngine::new()
        .with_cache_dir(&dir.0)
        .with_salt("sweep-v2-test");
    salted.run_cells(&cells(&counting));
    assert_eq!(salted.stats().cache_hits, 0);
    assert_eq!(built.load(Ordering::Relaxed), cold_builds);

    // And the salted results are themselves cached under the new key.
    built.store(0, Ordering::Relaxed);
    let mut resalted = SweepEngine::new()
        .with_cache_dir(&dir.0)
        .with_salt("sweep-v2-test");
    resalted.run_cells(&cells(&counting));
    assert_eq!(resalted.stats().cache_hits, resalted.stats().jobs);
    assert_eq!(built.load(Ordering::Relaxed), 0);
}

#[test]
fn disabled_cache_never_writes_the_directory() {
    let dir = TempCacheDir::new("off");
    let plain = || -> Box<dyn PollingProtocol> { Box::new(TppConfig::default().into_protocol()) };
    let mut engine = SweepEngine::new();
    engine.run_cells(&cells(&plain));
    assert_eq!(engine.stats().cache_hits, 0);
    assert!(
        !dir.0.exists(),
        "engine without with_cache_dir must not create {:?}",
        dir.0
    );
}
