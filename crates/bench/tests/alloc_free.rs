//! Allocation audit for the polling hot path.
//!
//! The round-index/arena rework's claim is that a fault-free inventory
//! allocates O(rounds) — arena high-water growth — never O(slots). A
//! counting `#[global_allocator]` shim proves it: the allocation count of a
//! full HPP run must stay far below the poll count, and growing the
//! population (hence the slot count) several-fold must not grow the
//! allocation count proportionally. The shim lives here, not in a library
//! crate, because every workspace lib `forbid(unsafe_code)`s — an
//! integration test is its own crate root and may implement `GlobalAlloc`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rfid_protocols::{HppConfig, PollingProtocol};
use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

/// Counts heap acquisitions (alloc + realloc — the events arena reuse is
/// supposed to eliminate) while armed; frees are deliberately not counted.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs a fault-free HPP inventory of `n` tags with the counter armed only
/// around the protocol run (population/context construction may allocate
/// freely) and returns (allocations, polls).
fn counted_hpp_run(n: usize) -> (u64, u64) {
    let pop = TagPopulation::sequential(n, |i| BitVec::from_value((i % 16) as u64, 4));
    let mut ctx = SimContext::new(pop, &SimConfig::paper(7));
    let protocol = HppConfig::default().into_protocol();
    ACQUISITIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let report = protocol.run(&mut ctx);
    ARMED.store(false, Ordering::SeqCst);
    (ACQUISITIONS.load(Ordering::SeqCst), report.counters.polls)
}

/// One test drives both checks — the counter is process-global and the
/// default test harness runs `#[test]`s concurrently.
#[test]
fn hpp_inner_loop_does_not_allocate_per_slot() {
    let (small_allocs, small_polls) = counted_hpp_run(2_000);
    assert_eq!(small_polls, 2_000);
    // O(rounds) arena growth plus the final report: a couple hundred
    // acquisitions at the most, never one per poll.
    assert!(
        small_allocs < small_polls / 4,
        "HPP allocated {small_allocs} times for {small_polls} polls"
    );

    // Scaling check: 8× the tags (and ≈ 8× the slots) must not cost
    // anywhere near 8× the allocations — arenas grow to a high-water mark,
    // they are not reacquired per slot.
    let (large_allocs, large_polls) = counted_hpp_run(16_000);
    assert_eq!(large_polls, 16_000);
    assert!(
        large_allocs < small_allocs + large_polls / 8,
        "allocations scale with slots: {small_allocs} at n=2k vs {large_allocs} at n=16k"
    );
}
