//! End-to-end checks of the `repro` binary's argument handling: bad input
//! must produce a usage message and a nonzero exit instead of a panic, and
//! a valid analytic experiment must run clean.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("failed to launch repro binary")
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage:"), "missing usage header: {stdout}");
    assert!(
        stdout.contains("table1"),
        "usage must list experiments: {stdout}"
    );
}

#[test]
fn unknown_experiment_exits_nonzero_and_lists_the_valid_ones() {
    let out = repro(&["tabel1"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"), "stderr: {stderr}");
    assert!(
        stderr.contains("table1") && stderr.contains("fig10") && stderr.contains("all"),
        "error must list the valid experiments: {stderr}"
    );
}

#[test]
fn bad_flag_value_is_an_error_not_a_panic() {
    for args in [
        &["table1", "--runs"][..],
        &["table1", "--runs", "zero"][..],
        &["table1", "--runs", "0"][..],
        &["table1", "--max-n", "-5"][..],
        &["table1", "--frobnicate"][..],
        &["table1", "fig10"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "args {args:?} stderr: {stderr}");
        assert!(
            stderr.contains("usage:"),
            "args {args:?} must print usage: {stderr}"
        );
    }
}

#[test]
fn analytic_experiment_runs_clean() {
    let out = repro(&["fig4"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.is_empty());
}
