//! Determinism properties of the sweep engine and the merge laws it
//! relies on: parallel output is bit-identical to serial for any worker
//! count and run-block size, and `Summary`/`Counters` merging is
//! commutative (bit-exactly) and associative (exactly for integer fields,
//! up to rounding for `f64` sums).

use rfid_bench::{montecarlo, Cell, Summary, SweepEngine};
use rfid_hash::prop::{check, Gen};
use rfid_hash::{prop_assert, prop_assert_eq};
use rfid_protocols::{HppConfig, PollingProtocol, TppConfig};
use rfid_system::{to_json_string, Counters};
use rfid_workloads::Scenario;

type Factory = Box<dyn Fn() -> Box<dyn PollingProtocol> + Sync>;

fn grid_cells<'a>(tpp: &'a Factory, hpp: &'a Factory) -> Vec<Cell<'a>> {
    // A small but genuinely mixed grid: two protocols × two n × two seeds.
    let mut cells = Vec::new();
    for (label, factory) in [("TPP", tpp), ("HPP", hpp)] {
        for n in [40usize, 90] {
            for seed in [7u64, 8] {
                cells.push(Cell::new(
                    label,
                    "",
                    Scenario::uniform(n, 1).with_seed(seed),
                    4,
                    factory.as_ref(),
                ));
            }
        }
    }
    cells
}

/// Bit-exact fingerprint of a sweep result (every counter, time and field).
fn fingerprint(results: &[Vec<rfid_protocols::Report>]) -> String {
    results
        .iter()
        .flatten()
        .map(to_json_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn parallel_equals_serial_bit_for_bit_for_random_schedules() {
    let tpp: Factory = Box::new(|| Box::new(TppConfig::default().into_protocol()));
    let hpp: Factory = Box::new(|| Box::new(HppConfig::default().into_protocol()));
    let serial = fingerprint(
        &SweepEngine::new()
            .with_workers(1)
            .run_cells(&grid_cells(&tpp, &hpp)),
    );

    check("parallel sweep == serial sweep", 8, |g: &mut Gen| {
        let workers = g.u64_in(2, 8) as usize;
        let block = g.u64_in(1, 5);
        let parallel = fingerprint(
            &SweepEngine::new()
                .with_workers(workers)
                .with_run_block(block)
                .run_cells(&grid_cells(&tpp, &hpp)),
        );
        prop_assert_eq!(&parallel, &serial);
        Ok(())
    });
}

#[test]
fn engine_reproduces_montecarlo_run_for_run() {
    let scenario = Scenario::uniform(80, 1).with_seed(21);
    let runs = 6u64;
    let factory: Factory = Box::new(|| Box::new(TppConfig::default().into_protocol()));
    let reference: Vec<String> = montecarlo(&scenario, runs, factory.as_ref())
        .iter()
        .map(to_json_string)
        .collect();
    let cell = Cell::new("TPP", "", scenario, runs, factory.as_ref());
    let engine: Vec<String> = SweepEngine::new()
        .with_workers(3)
        .with_run_block(4)
        .run_cells(std::slice::from_ref(&cell))
        .remove(0)
        .iter()
        .map(to_json_string)
        .collect();
    assert_eq!(engine, reference);
}

fn random_counters(g: &mut Gen) -> Counters {
    let mut c = Counters::default();
    c.reader_bits = g.u64_below(1 << 20);
    c.tag_bits = g.u64_below(1 << 20);
    c.vector_bits = g.u64_below(1 << 20);
    c.query_rep_bits = g.u64_below(1 << 16);
    c.polls = g.u64_below(1 << 16);
    c.rounds = g.u64_below(1 << 10);
    c.circles = g.u64_below(1 << 10);
    c.empty_slots = g.u64_below(1 << 12);
    c.collision_slots = g.u64_below(1 << 12);
    c.lost_replies = g.u64_below(1 << 8);
    c.downlink_losses = g.u64_below(1 << 8);
    c.corrupted_replies = g.u64_below(1 << 8);
    c.desync_recoveries = g.u64_below(1 << 8);
    c.retransmissions = g.u64_below(1 << 8);
    c.tag_listen_us = g.f64_in(0.0, 1e9);
    c
}

/// Exact equality on integer fields; `tag_listen_us` compared within one
/// part in 1e12 (f64 addition is associative only up to rounding).
fn counters_close(a: &Counters, b: &Counters) -> bool {
    let ints_equal = {
        let strip = |c: &Counters| {
            let mut c = *c;
            c.tag_listen_us = 0.0;
            c
        };
        strip(a) == strip(b)
    };
    let listen_close = (a.tag_listen_us - b.tag_listen_us).abs()
        <= 1e-12 * a.tag_listen_us.abs().max(b.tag_listen_us.abs()).max(1.0);
    ints_equal && listen_close
}

#[test]
fn counters_merge_is_commutative_and_associative() {
    check("counters merge laws", 128, |g: &mut Gen| {
        let a = random_counters(g);
        let b = random_counters(g);
        let c = random_counters(g);
        // Commutativity is bit-exact (x + y == y + x in f64 too).
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        // Associativity: exact for the integer monoid, within rounding for
        // the f64 listen-time sum.
        let left = a.merged(&b).merged(&c);
        let right = a.merged(&b.merged(&c));
        prop_assert!(
            counters_close(&left, &right),
            "associativity violated: {left:?} vs {right:?}"
        );
        // Identity.
        prop_assert_eq!(a.merged(&Counters::default()), a);
        Ok(())
    });
}

fn random_summary(g: &mut Gen) -> Summary {
    let samples = g.vec(1, 12, |g| g.f64_in(-1e3, 1e3));
    Summary::of(&samples)
}

fn summaries_close(a: Summary, b: Summary) -> bool {
    a.count == b.count
        && a.min == b.min
        && a.max == b.max
        && (a.mean - b.mean).abs() <= 1e-9 * a.mean.abs().max(1.0)
        && (a.std - b.std).abs() <= 1e-6 * a.std.abs().max(1.0)
}

#[test]
fn summary_merge_is_commutative_and_associative() {
    check("summary merge laws", 128, |g: &mut Gen| {
        let a = random_summary(g);
        let b = random_summary(g);
        let c = random_summary(g);
        // Commutativity is bit-exact by construction.
        prop_assert_eq!(a.merge(b), b.merge(a));
        // Associativity up to rounding.
        let left = a.merge(b).merge(c);
        let right = a.merge(b.merge(c));
        prop_assert!(
            summaries_close(left, right),
            "associativity violated: {left:?} vs {right:?}"
        );
        // Identity, both sides.
        prop_assert_eq!(a.merge(Summary::empty()), a);
        prop_assert_eq!(Summary::empty().merge(a), a);
        Ok(())
    });
}

#[test]
fn summary_merge_tree_matches_flat_summary() {
    // The reduction shape the engine uses: per-block summaries folded in
    // block order equal the whole-sample summary within rounding.
    check("blocked summary == flat summary", 64, |g: &mut Gen| {
        let samples = g.vec(2, 24, |g| g.f64_in(-50.0, 50.0));
        let flat = Summary::of(&samples);
        let block = 1 + g.len_in(1, 5);
        let folded = samples
            .chunks(block)
            .map(Summary::of)
            .fold(Summary::empty(), Summary::merge);
        prop_assert!(
            summaries_close(flat, folded),
            "blocked {folded:?} vs flat {flat:?}"
        );
        Ok(())
    });
}
