//! Hot-path throughput gate for the round-index/arena rework.
//!
//! Measures end-to-end simulator throughput (tags identified per second of
//! wall clock, and air-interface slots per second) at n = 10⁴, 10⁵ and 10⁶
//! on the paper configuration, and compares against the throughput of the
//! **pre-change** simulator measured on the same machine class before the
//! counting-sort round index and context arenas landed. The protocols
//! whose per-slot population scans were pure implementation artifacts —
//! Query Tree's per-query prefix scan and binary splitting's dense
//! counter map — must clear a ≥ 10× bar at their gated sizes; EHPP and
//! the Q-algorithm, whose remaining Ω(remaining)-per-round term is the
//! protocol itself (fresh-seed re-hash per circle, counter redraw per
//! frame), gate at constant-factor floors; the rest are tracked for
//! regressions.
//!
//! Writes `BENCH_hotpath.json` (schema: `{"group":"hotpath","results":
//! [{"name","n","seconds","tags_per_sec","slots_per_sec","baseline_tags_per_sec",
//! "speedup"}]}`) next to the other bench reports so `scripts/verify.sh`
//! can check it stays present and well-formed.

use std::time::Instant;

use rfid_baselines::{FsaConfig, LowerBound, MicConfig};
use rfid_bench::find_target_dir;
use rfid_identify::{BinarySplitConfig, QAlgorithmConfig, QueryTreeConfig};
use rfid_protocols::{EhppConfig, HppConfig, PollingProtocol, TppConfig};
use rfid_system::{BitVec, Json, SimConfig, SimContext, TagPopulation, ToJson};

/// One throughput case: a protocol at a population size, with the
/// throughput the pre-change simulator achieved there (tags/sec, measured
/// in release mode on the paper config at seed 7) and the speedup floor
/// this build must clear against it (`None` = tracked, not gated — the
/// protocol was already index-driven before the rework).
struct Case {
    name: &'static str,
    n: usize,
    baseline_tags_per_sec: f64,
    min_speedup: Option<f64>,
    make: fn() -> Box<dyn PollingProtocol>,
}

const CASES: &[Case] = &[
    // Already O(1)-per-poll before the rework: regression-tracked only.
    Case {
        name: "HPP",
        n: 10_000,
        baseline_tags_per_sec: 9.75e6,
        min_speedup: None,
        make: || Box::new(HppConfig::default().into_protocol()),
    },
    Case {
        name: "HPP",
        n: 100_000,
        baseline_tags_per_sec: 5.38e6,
        min_speedup: None,
        make: || Box::new(HppConfig::default().into_protocol()),
    },
    Case {
        name: "HPP",
        n: 1_000_000,
        baseline_tags_per_sec: 4.57e6,
        min_speedup: None,
        make: || Box::new(HppConfig::default().into_protocol()),
    },
    Case {
        name: "TPP",
        n: 100_000,
        baseline_tags_per_sec: 3.43e6,
        min_speedup: None,
        make: || Box::new(TppConfig::default().into_protocol()),
    },
    // EHPP and the Q-algorithm keep a semantic Ω(remaining) term — every
    // circle re-hashes all remaining tags against a fresh seed, every frame
    // (re)start redraws every counter — so their ceiling is a constant
    // factor (≈ 3–6× unloaded); the floors leave headroom for loaded CI
    // machines while still catching a regression to the pre-change cost.
    Case {
        name: "EHPP",
        n: 100_000,
        baseline_tags_per_sec: 70_887.0,
        min_speedup: Some(1.5),
        make: || Box::new(EhppConfig::default().into_protocol()),
    },
    Case {
        name: "Q-algo",
        n: 100_000,
        baseline_tags_per_sec: 1_568.0,
        min_speedup: Some(1.5),
        make: || Box::new(QAlgorithmConfig::default().into_protocol()),
    },
    // The former per-slot population scanners: gated at ≥ 10×. Baselines
    // are direct measurements of the pre-change build at the same n where
    // available; the pre-change Query Tree at 100k was too slow to run to
    // completion, so its 20k throughput (185 tags/s) stands in — an upper
    // bound on the true 100k baseline, since per-query cost grows with n,
    // which makes the 10× gate strictly conservative.
    Case {
        name: "QueryTree",
        n: 20_000,
        baseline_tags_per_sec: 185.0,
        min_speedup: Some(10.0),
        make: || Box::new(QueryTreeConfig::default().into_protocol()),
    },
    Case {
        name: "QueryTree",
        n: 100_000,
        baseline_tags_per_sec: 185.0,
        min_speedup: Some(10.0),
        make: || Box::new(QueryTreeConfig::default().into_protocol()),
    },
    Case {
        name: "BinSplit",
        n: 20_000,
        baseline_tags_per_sec: 6_539.0,
        min_speedup: Some(10.0),
        make: || Box::new(BinarySplitConfig::default().into_protocol()),
    },
    Case {
        name: "BinSplit",
        n: 100_000,
        baseline_tags_per_sec: 1_033.0,
        min_speedup: Some(10.0),
        make: || Box::new(BinarySplitConfig::default().into_protocol()),
    },
    // Frame/sweep baselines: regression-tracked.
    Case {
        name: "FSA",
        n: 100_000,
        baseline_tags_per_sec: 2.50e6,
        min_speedup: None,
        make: || Box::new(FsaConfig::default().into_protocol()),
    },
    Case {
        name: "MIC",
        n: 100_000,
        baseline_tags_per_sec: 1.59e6,
        min_speedup: None,
        make: || Box::new(MicConfig::default().into_protocol()),
    },
    Case {
        name: "LowerBound",
        n: 100_000,
        baseline_tags_per_sec: 74.0e6,
        min_speedup: None,
        make: || Box::new(LowerBound),
    },
];

/// Runs one case to completion and returns (seconds, slots).
fn run_case(case: &Case) -> (f64, u64) {
    let pop = TagPopulation::sequential(case.n, |i| BitVec::from_value((i % 16) as u64, 4));
    let mut ctx = SimContext::new(pop, &SimConfig::paper(7));
    let start = Instant::now();
    let report = (case.make)().run(&mut ctx);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        report.counters.polls, case.n as u64,
        "{} n={}: incomplete inventory",
        case.name, case.n
    );
    let slots =
        report.counters.polls + report.counters.empty_slots + report.counters.collision_slots;
    (seconds, slots)
}

fn main() {
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .filter(|a| !a.is_empty());
    let mut results: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for case in CASES {
        let label = format!("{}_{}", case.name, case.n);
        if let Some(f) = &filter {
            if !label.contains(f.as_str()) {
                continue;
            }
        }
        // Best-of-3 for the fast cases; single shot once a run is slow
        // enough that timer noise is irrelevant.
        let (mut seconds, mut slots) = run_case(case);
        if seconds < 0.25 {
            for _ in 0..2 {
                let (s, sl) = run_case(case);
                if s < seconds {
                    seconds = s;
                }
                slots = sl;
            }
        }
        let tags_per_sec = case.n as f64 / seconds;
        let slots_per_sec = slots as f64 / seconds;
        let speedup = tags_per_sec / case.baseline_tags_per_sec;
        println!(
            "hotpath/{label}: {seconds:.3}s  {tags_per_sec:.0} tags/s  \
             {slots_per_sec:.0} slots/s  ({speedup:.1}x pre-change)"
        );
        if let Some(floor) = case.min_speedup {
            if speedup < floor {
                failures.push(format!(
                    "{label}: {speedup:.1}x < required {floor:.0}x \
                     ({tags_per_sec:.0} vs baseline {:.0} tags/s)",
                    case.baseline_tags_per_sec
                ));
            }
        }
        results.push(Json::Obj(vec![
            ("name".to_string(), case.name.to_json()),
            ("n".to_string(), (case.n as u64).to_json()),
            ("seconds".to_string(), seconds.to_json()),
            ("tags_per_sec".to_string(), tags_per_sec.to_json()),
            ("slots_per_sec".to_string(), slots_per_sec.to_json()),
            (
                "baseline_tags_per_sec".to_string(),
                case.baseline_tags_per_sec.to_json(),
            ),
            ("speedup".to_string(), speedup.to_json()),
            ("gated".to_string(), case.min_speedup.is_some().to_json()),
        ]));
    }

    if !results.is_empty() {
        let report = Json::Obj(vec![
            ("group".to_string(), "hotpath".to_json()),
            ("results".to_string(), Json::Arr(results)),
        ])
        .to_pretty_string();
        let file = "BENCH_hotpath.json";
        let path = find_target_dir()
            .map(|d| d.join(file))
            .unwrap_or_else(|| file.into());
        match std::fs::write(&path, report + "\n") {
            Ok(()) => println!("report: {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    if !failures.is_empty() {
        eprintln!("hot-path throughput gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
