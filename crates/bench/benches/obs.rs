//! Telemetry overhead guard: a full HPP run with tracing disabled must cost
//! the same as before the observability layer existed — `SimContext::trace`
//! is a branch on a cold flag, and the event constructors live behind a
//! closure that never runs. The enabled and ring variants quantify what a
//! consumer pays when they *do* ask for a trace, and the derive benchmarks
//! price the trace→metrics and trace→counters replays.

use std::hint::black_box;

use rfid_bench::Bench;
use rfid_protocols::{HppConfig, PollingProtocol};
use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

const N: usize = 500;

fn run_once(cfg: &SimConfig) -> SimContext {
    let pop = TagPopulation::sequential(N, |i| BitVec::from_value((i % 2) as u64, 1));
    let mut ctx = SimContext::new(pop, cfg);
    HppConfig::default().into_protocol().run(&mut ctx);
    ctx
}

fn main() {
    let mut b = Bench::new("obs");
    b.sample_size(20);

    let disabled = SimConfig::paper(7);
    b.bench(&format!("hpp_{N}/trace_disabled"), || {
        black_box(run_once(&disabled).counters.polls)
    });

    let enabled = SimConfig::paper(7).with_trace();
    b.bench(&format!("hpp_{N}/trace_enabled"), || {
        black_box(run_once(&enabled).log.len())
    });

    let ring = SimConfig::paper(7).with_trace_ring(256);
    b.bench(&format!("hpp_{N}/trace_ring_256"), || {
        black_box(run_once(&ring).log.dropped())
    });

    let traced = run_once(&enabled);
    b.bench(&format!("hpp_{N}/metrics_from_log"), || {
        black_box(rfid_obs::metrics_from_log(&traced.log).counter("polls"))
    });
    b.bench(&format!("hpp_{N}/counters_from_events"), || {
        black_box(rfid_obs::counters_from_events(traced.log.events()).polls)
    });

    b.finish();
}
