//! Telemetry overhead guard: a full HPP run with tracing disabled must cost
//! the same as before the observability layer existed — `SimContext::trace`
//! is a branch on a cold flag, and the event constructors live behind a
//! closure that never runs. The enabled and ring variants quantify what a
//! consumer pays when they *do* ask for a trace, and the derive benchmarks
//! price the trace→metrics and trace→counters replays.

use std::hint::black_box;

use rfid_bench::Bench;
use rfid_protocols::{HppConfig, PollingProtocol};
use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

const N: usize = 500;

fn run_once(cfg: &SimConfig) -> SimContext {
    let pop = TagPopulation::sequential(N, |i| BitVec::from_value((i % 2) as u64, 1));
    let mut ctx = SimContext::new(pop, cfg);
    HppConfig::default().into_protocol().run(&mut ctx);
    ctx
}

fn main() {
    let mut b = Bench::new("obs");
    b.sample_size(20);

    let disabled = SimConfig::paper(7);
    // Functional zero-cost proof: the disabled path must leave the log
    // untouched — no events, no timestamps, nothing to serialize.
    let quiet = run_once(&disabled);
    assert!(
        !quiet.log.is_enabled(),
        "disabled run must keep the log off"
    );
    assert_eq!(quiet.log.len(), 0, "disabled run recorded events");
    assert!(
        quiet.log.to_jsonl().is_empty(),
        "disabled run serialized a trace"
    );
    b.bench(&format!("hpp_{N}/trace_disabled"), || {
        black_box(run_once(&disabled).counters.polls)
    });

    let enabled = SimConfig::paper(7).with_trace();
    b.bench(&format!("hpp_{N}/trace_enabled"), || {
        black_box(run_once(&enabled).log.len())
    });

    let ring = SimConfig::paper(7).with_trace_ring(256);
    b.bench(&format!("hpp_{N}/trace_ring_256"), || {
        black_box(run_once(&ring).log.dropped())
    });

    let traced = run_once(&enabled);
    b.bench(&format!("hpp_{N}/metrics_from_log"), || {
        black_box(rfid_obs::metrics_from_log(&traced.log).counter("polls"))
    });
    b.bench(&format!("hpp_{N}/counters_from_events"), || {
        black_box(rfid_obs::counters_from_events(traced.log.events()).polls)
    });

    // Overhead bound: with telemetry off the run must never cost more than
    // the traced run — the disabled path is a cold branch, not a cheaper
    // serializer. Compare best-of-sample times (the mean is at the mercy of
    // scheduler noise on sub-100 µs runs); 5 % headroom absorbs the timer.
    let min_of = |name: &str| {
        b.results()
            .iter()
            .find(|m| m.name.contains(name))
            .map(|m| m.nanos.min)
    };
    if let (Some(off), Some(on)) = (min_of("trace_disabled"), min_of("trace_enabled")) {
        assert!(
            off <= on * 1.05,
            "disabled telemetry ({off:.0} ns) costs more than enabled ({on:.0} ns)"
        );
        println!(
            "obs/overhead_bound: disabled/enabled = {:.2} (must be ≤ 1.05)",
            off / on
        );
    }

    b.finish();
}
