//! Chaos-soak resilience gate: client-side chaos (seeded byte flips,
//! cuts, Gilbert–Elliott bursts), daemon-side kill points, shedding
//! pressure, and drain-on-shutdown — every faulted session must finish
//! with report JSON and FNV-1a trace digest *bit-identical* to its
//! unfaulted in-process reference. Because every chaos plan carries a
//! finite fault budget, the link is eventually usable, so the gate
//! demands a 100% recovery rate.
//!
//! Writes `BENCH_resilience.json` (schema: `{"group":"resilience",
//! "results":[{"name","protocol","n","sessions","recovered",
//! "recovery_rate","retries","reconnects","faults_injected",
//! "resurrections","shed","drains",("latency_p50_us","latency_p90_us",
//! "latency_p99_us")}]}`) next to the other bench reports so
//! `scripts/verify.sh` and `obs_report --check-resilience` can gate on
//! it.

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use rfid_bench::{find_target_dir, fnv64};
use rfid_daemon::{
    install_killpoint_hook, DaemonClient, FleetLimits, ResilientClient, RetryPolicy,
};
use rfid_obs::Log2Histogram;
use rfid_protocols::{Session, SessionEnd, TppConfig};
use rfid_system::{GilbertElliott, Json, SimConfig, SimContext, ToJson};
use rfid_wire::{ChaosDirector, ChaosPlan, OpenRequest};
use rfid_workloads::Scenario;

const PROTOCOL: &str = "TPP";
const N: u64 = 96;
const INFO_BITS: u64 = 4;
const SEEDS: [u64; 3] = [11, 47, 203];

struct CaseResult {
    name: &'static str,
    sessions: u64,
    recovered: u64,
    retries: u64,
    reconnects: u64,
    faults_injected: u64,
    resurrections: u64,
    shed: u64,
    drains: u64,
    latencies: Option<Log2Histogram>,
}

impl CaseResult {
    fn zero(name: &'static str) -> CaseResult {
        CaseResult {
            name,
            sessions: 0,
            recovered: 0,
            retries: 0,
            reconnects: 0,
            faults_injected: 0,
            resurrections: 0,
            shed: 0,
            drains: 0,
            latencies: None,
        }
    }
}

/// The unfaulted in-process reference identity for one seed.
fn local_identity(seed: u64) -> (String, u64) {
    let scenario = Scenario::uniform(N as usize, INFO_BITS as usize).with_seed(seed);
    let config = SimConfig::paper(scenario.protocol_seed()).with_trace();
    let protocol = TppConfig::default().into_protocol();
    let mut ctx = SimContext::new(scenario.build_population(), &config);
    let mut session = Session::open(&protocol, &ctx);
    let SessionEnd::Complete { report, .. } = session.run(&mut ctx) else {
        panic!("reference run did not complete (seed {seed})");
    };
    (report.to_json().to_string(), fnv64(&ctx.log.to_jsonl()))
}

fn open_req(seed: u64) -> OpenRequest {
    OpenRequest::new(PROTOCOL, N, INFO_BITS, seed)
}

fn policy() -> RetryPolicy {
    RetryPolicy::default()
        .with_verb_timeout(Duration::from_millis(800))
        .with_checkpoint_every(3)
        .with_backoff_us(200, 5_000)
        .with_max_attempts(80)
}

fn outcome_identity(outcome: &rfid_wire::SessionOutcome) -> Option<(String, u64)> {
    (outcome.status == "complete").then(|| {
        (
            outcome.report.to_string(),
            outcome.trace_digest.unwrap_or(0),
        )
    })
}

/// Clean serving baseline: a plain client on an unfaulted link must
/// match the in-process reference (the control arm of the soak).
fn reference_case() -> CaseResult {
    let mut case = CaseResult::zero("reference");
    let daemon = rfid_daemon::Daemon::bind("127.0.0.1:0").expect("bind");
    let addr = daemon.local_addr();
    let stop = daemon.stop_handle();
    let server = std::thread::spawn(move || daemon.run());
    for seed in SEEDS {
        case.sessions += 1;
        let mut client = DaemonClient::connect(addr).expect("connect");
        let session = client.open(open_req(seed)).expect("open");
        let outcome = match client.run(session, None, |_, _, _, _| {}).expect("run") {
            rfid_daemon::RunEnd::Done(outcome) => outcome,
            rfid_daemon::RunEnd::Paused { .. } => panic!("unbounded run paused"),
        };
        client.close(session).expect("close");
        if outcome_identity(&outcome) == Some(local_identity(seed)) {
            case.recovered += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    server.join().expect("daemon thread").expect("daemon ok");
    case
}

/// One chaos arm: every seed runs through a fresh daemon and a chaos
/// link built from `mk_plan(seed)`; the resilient client must land on
/// the bit-identical reference.
fn chaos_case(
    name: &'static str,
    kill_after: Option<u64>,
    mk_plan: impl Fn(u64) -> ChaosPlan,
) -> CaseResult {
    let mut case = CaseResult::zero(name);
    for seed in SEEDS {
        case.sessions += 1;
        let mut daemon = rfid_daemon::Daemon::bind("127.0.0.1:0")
            .expect("bind")
            .with_shards(2)
            .with_supervise_every(2);
        if let Some(after) = kill_after {
            daemon = daemon.with_kill_after(after);
        }
        let addr = daemon.local_addr();
        let stop = daemon.stop_handle();
        let supervisor = daemon.supervisor();
        let server = std::thread::spawn(move || daemon.run());

        let director = ChaosDirector::new(mk_plan(seed));
        let dialer = director.clone();
        let policy = policy();
        let verb_timeout = policy.verb_timeout;
        let mut client = ResilientClient::new(
            move || {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(Duration::from_millis(10)))?;
                Ok(DaemonClient::new(dialer.transport(stream)).with_verb_timeout(verb_timeout))
            },
            policy,
        );
        let outcome = client.run_to_done(&open_req(seed)).expect("chaos run");
        if outcome_identity(&outcome) == Some(local_identity(seed)) {
            case.recovered += 1;
        }
        case.retries += client.retries();
        case.reconnects += client.reconnects();
        case.faults_injected += director.faults_injected();

        stop.store(true, Ordering::Relaxed);
        server.join().expect("daemon thread").expect("daemon ok");
        case.resurrections += supervisor.counter("sessions_resurrected");
        supervisor.reconcile().expect("session conservation");
    }
    case
}

/// Shedding pressure: more resilient clients than the admission budget
/// allows. Every client must complete bit-identically; per-session wall
/// latency (including Busy backoff) lands in the percentile histogram.
fn shed_pressure_case(clients: usize) -> CaseResult {
    let mut case = CaseResult::zero("shed_pressure");
    let daemon = rfid_daemon::Daemon::bind("127.0.0.1:0")
        .expect("bind")
        .with_shards(4)
        .with_limits(FleetLimits::bounded(2, 2).with_retry_after_us(2_000));
    let addr = daemon.local_addr();
    let stop = daemon.stop_handle();
    let supervisor = daemon.supervisor();
    let server = std::thread::spawn(move || daemon.run());

    let outcomes: Vec<(bool, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let seed = SEEDS[c % SEEDS.len()];
                    let started = Instant::now();
                    let mut client = ResilientClient::tcp(
                        addr,
                        policy()
                            .with_verb_timeout(Duration::from_secs(5))
                            .with_checkpoint_every(16),
                    );
                    let outcome = client.run_to_done(&open_req(seed)).expect("run");
                    let us = started.elapsed().as_micros().max(1) as u64;
                    (outcome_identity(&outcome) == Some(local_identity(seed)), us)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    stop.store(true, Ordering::Relaxed);
    server.join().expect("daemon thread").expect("daemon ok");

    let mut latencies = Log2Histogram::new();
    for (ok, us) in outcomes {
        case.sessions += 1;
        case.recovered += ok as u64;
        latencies.record(us);
    }
    case.shed = supervisor.counter("sessions_shed");
    case.latencies = Some(latencies);
    supervisor.reconcile().expect("session conservation");
    case
}

/// Drain-on-shutdown: sessions still live when the listener closes are
/// checkpointed; each drained snapshot must restore in-process to the
/// bit-identical reference.
fn drain_shutdown_case() -> CaseResult {
    let mut case = CaseResult::zero("drain_shutdown");
    let daemon = rfid_daemon::Daemon::bind("127.0.0.1:0")
        .expect("bind")
        .with_shards(2);
    let addr = daemon.local_addr();
    let supervisor = daemon.supervisor();
    let server = std::thread::spawn(move || daemon.run());

    let mut client = DaemonClient::connect(addr).expect("connect");
    for seed in SEEDS {
        let session = client.open(open_req(seed)).expect("open");
        match client.run(session, Some(5), |_, _, _, _| {}).expect("run") {
            rfid_daemon::RunEnd::Paused { .. } => {}
            rfid_daemon::RunEnd::Done(_) => panic!("5 steps must not finish {N} tags"),
        }
    }
    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("daemon thread").expect("daemon ok");

    case.drains = supervisor.counter("drain_checkpoints");
    let drained = supervisor.drained();
    let protocol = rfid_daemon::protocol_by_name(PROTOCOL).expect("servable");
    // Drain order is session-table order, not open order: match each
    // finished snapshot against the reference identity *set*.
    let mut expected: Vec<(String, u64)> = SEEDS.iter().map(|&s| local_identity(s)).collect();
    for (_gid, snapshot) in &drained {
        case.sessions += 1;
        let (mut ctx, mut session) =
            Session::restore(protocol.as_ref(), snapshot).expect("drained snapshot restores");
        let SessionEnd::Complete { report, .. } = session.run(&mut ctx) else {
            panic!("drained snapshot did not complete");
        };
        let identity = (report.to_json().to_string(), fnv64(&ctx.log.to_jsonl()));
        if let Some(at) = expected.iter().position(|e| *e == identity) {
            expected.remove(at);
            case.recovered += 1;
        }
    }
    supervisor.reconcile().expect("session conservation");
    case
}

fn main() {
    install_killpoint_hook();
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .filter(|a| !a.is_empty());
    let mut results: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    let cases: Vec<CaseResult> = [
        (
            "reference",
            Box::new(reference_case) as Box<dyn Fn() -> CaseResult>,
        ),
        (
            "chaos_flips",
            Box::new(|| {
                chaos_case("chaos_flips", None, |seed| {
                    ChaosPlan::flips(seed, 0.002, 30)
                })
            }),
        ),
        (
            "chaos_cuts",
            Box::new(|| chaos_case("chaos_cuts", None, |seed| ChaosPlan::cuts(seed, 0.0008, 12))),
        ),
        (
            "chaos_burst",
            Box::new(|| {
                chaos_case("chaos_burst", None, |seed| {
                    ChaosPlan::flips(seed, 0.02, 30)
                        .with_burst(GilbertElliott::new(0.002, 0.05, 0.0, 1.0))
                })
            }),
        ),
        (
            "chaos_kill",
            Box::new(|| {
                // A mild flip plan plus a fire-once daemon-side kill at
                // step 4 (sessions run 6–8 steps): both fault planes in
                // one arm.
                chaos_case("chaos_kill", Some(4), |seed| {
                    ChaosPlan::flips(seed, 0.0005, 10)
                })
            }),
        ),
        ("shed_pressure", Box::new(|| shed_pressure_case(6))),
        ("drain_shutdown", Box::new(drain_shutdown_case)),
    ]
    .into_iter()
    .filter(|(name, _)| filter.as_deref().map_or(true, |f| name.contains(f)))
    .map(|(_, run)| run())
    .collect();

    for case in &cases {
        let rate = case.recovered as f64 / (case.sessions as f64).max(1.0);
        println!(
            "resilience/{}: {}/{} recovered bit-identically ({} retries, {} reconnects, \
             {} faults, {} resurrected, {} shed, {} drained)",
            case.name,
            case.recovered,
            case.sessions,
            case.retries,
            case.reconnects,
            case.faults_injected,
            case.resurrections,
            case.shed,
            case.drains,
        );
        if case.recovered != case.sessions {
            failures.push(format!(
                "{}: only {}/{} sessions recovered bit-identically",
                case.name, case.recovered, case.sessions
            ));
        }
        let mut fields = vec![
            ("name".to_string(), case.name.to_json()),
            ("protocol".to_string(), PROTOCOL.to_json()),
            ("n".to_string(), N.to_json()),
            ("sessions".to_string(), case.sessions.to_json()),
            ("recovered".to_string(), case.recovered.to_json()),
            ("recovery_rate".to_string(), rate.to_json()),
            ("retries".to_string(), case.retries.to_json()),
            ("reconnects".to_string(), case.reconnects.to_json()),
            (
                "faults_injected".to_string(),
                case.faults_injected.to_json(),
            ),
            ("resurrections".to_string(), case.resurrections.to_json()),
            ("shed".to_string(), case.shed.to_json()),
            ("drains".to_string(), case.drains.to_json()),
        ];
        if let Some(latencies) = &case.latencies {
            let pct = |q: f64| latencies.percentile(q).unwrap_or(0) as f64;
            fields.push(("latency_p50_us".to_string(), pct(0.5).to_json()));
            fields.push(("latency_p90_us".to_string(), pct(0.9).to_json()));
            fields.push(("latency_p99_us".to_string(), pct(0.99).to_json()));
        }
        results.push(Json::Obj(fields));
    }

    if !results.is_empty() {
        let report = Json::Obj(vec![
            ("group".to_string(), "resilience".to_json()),
            ("results".to_string(), Json::Arr(results)),
        ])
        .to_pretty_string();
        let file = "BENCH_resilience.json";
        let path = find_target_dir()
            .map(|d| d.join(file))
            .unwrap_or_else(|| file.into());
        match std::fs::write(&path, report + "\n") {
            Ok(()) => println!("report: {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    if !failures.is_empty() {
        eprintln!("resilience gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
