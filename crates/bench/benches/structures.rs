//! Micro-benchmarks of the core data structures: the polling tree, the
//! singleton sift, the tag hash, and the bit vector — the hot paths of a
//! reader implementation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rfid_hash::{TagHash, Xoshiro256};
use rfid_protocols::PollingTree;
use rfid_system::BitVec;

fn bench_tag_hash(c: &mut Criterion) {
    let hash = TagHash::new(0xDEAD_BEEF);
    c.bench_function("hash/tag_index", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id = id.wrapping_add(1);
            black_box(hash.index(7, id, 14))
        })
    });
}

fn bench_polling_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree");
    for &m in &[100usize, 1_000, 10_000] {
        let h = 16u32;
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < m {
            set.insert(rng.below(1 << h));
        }
        let indices: Vec<u64> = set.into_iter().collect();
        group.bench_with_input(BenchmarkId::new("build", m), &indices, |b, idx| {
            b.iter(|| black_box(PollingTree::from_indices(h, idx)))
        });
        let tree = PollingTree::from_indices(h, &indices);
        group.bench_with_input(BenchmarkId::new("traverse", m), &tree, |b, t| {
            b.iter(|| black_box(t.preorder_segments()))
        });
        let segments = tree.preorder_segments();
        group.bench_with_input(BenchmarkId::new("decode", m), &segments, |b, segs| {
            b.iter(|| black_box(PollingTree::decode_segments(h, segs)))
        });
    }
    group.finish();
}

fn bench_bitvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec");
    group.bench_function("push_1k", |b| {
        b.iter(|| {
            let mut v = BitVec::with_capacity(1_000);
            for i in 0..1_000 {
                v.push(i % 3 == 0);
            }
            black_box(v)
        })
    });
    let a = BitVec::from_value(0xDEAD_BEEF_F00D, 48);
    let mut big = BitVec::zeros(48);
    group.bench_function("overwrite_suffix", |b| {
        b.iter(|| {
            big.overwrite_suffix(black_box(&a));
            black_box(&big);
        })
    });
    group.finish();
}

fn bench_singleton_sift(c: &mut Criterion) {
    // The reader-side per-round cost at scale: hash + sort + group.
    let mut group = c.benchmark_group("sift");
    group.sample_size(20);
    for &n in &[10_000usize, 100_000] {
        let hash = TagHash::new(42);
        let ids: Vec<u64> = (0..n as u64).collect();
        let h = 17u32;
        group.bench_with_input(BenchmarkId::new("round", n), &ids, |b, ids| {
            b.iter(|| {
                let mut pairs: Vec<(u64, usize)> = ids
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (hash.index(0, id, h), i))
                    .collect();
                pairs.sort_unstable();
                let mut singles = 0usize;
                let mut i = 0;
                while i < pairs.len() {
                    let mut j = i + 1;
                    while j < pairs.len() && pairs[j].0 == pairs[i].0 {
                        j += 1;
                    }
                    if j - i == 1 {
                        singles += 1;
                    }
                    i = j;
                }
                black_box(singles)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tag_hash,
    bench_polling_tree,
    bench_bitvec,
    bench_singleton_sift
);
criterion_main!(benches);
