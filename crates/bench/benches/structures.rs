//! Micro-benchmarks of the core data structures: the polling tree, the
//! singleton sift, the tag hash, and the bit vector — the hot paths of a
//! reader implementation. Runs on the in-repo harness (`rfid_bench::Bench`),
//! so `cargo bench` needs nothing from crates-io.

use std::hint::black_box;

use rfid_bench::Bench;
use rfid_hash::{TagHash, Xoshiro256};
use rfid_protocols::PollingTree;
use rfid_system::BitVec;

fn bench_tag_hash(b: &mut Bench) {
    let hash = TagHash::new(0xDEAD_BEEF);
    let mut id = 0u64;
    b.bench("hash/tag_index", || {
        id = id.wrapping_add(1);
        black_box(hash.index(7, id, 14))
    });
}

fn bench_polling_tree(b: &mut Bench) {
    for m in [100usize, 1_000, 10_000] {
        let h = 16u32;
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < m {
            set.insert(rng.below(1 << h));
        }
        let indices: Vec<u64> = set.into_iter().collect();
        b.bench(&format!("tree/build/{m}"), || {
            black_box(PollingTree::from_indices(h, &indices))
        });
        let tree = PollingTree::from_indices(h, &indices);
        b.bench(&format!("tree/traverse/{m}"), || {
            black_box(tree.preorder_segments())
        });
        let segments = tree.preorder_segments();
        b.bench(&format!("tree/decode/{m}"), || {
            black_box(PollingTree::decode_segments(h, &segments))
        });
    }
}

fn bench_bitvec(b: &mut Bench) {
    b.bench("bitvec/push_1k", || {
        let mut v = BitVec::with_capacity(1_000);
        for i in 0..1_000 {
            v.push(i % 3 == 0);
        }
        black_box(v)
    });
    let a = BitVec::from_value(0xDEAD_BEEF_F00D, 48);
    let mut big = BitVec::zeros(48);
    b.bench("bitvec/overwrite_suffix", || {
        big.overwrite_suffix(black_box(&a));
        black_box(&big);
    });
}

fn bench_singleton_sift(b: &mut Bench) {
    // The reader-side per-round cost at scale: hash + sort + group.
    for n in [10_000usize, 100_000] {
        let hash = TagHash::new(42);
        let ids: Vec<u64> = (0..n as u64).collect();
        let h = 17u32;
        b.bench(&format!("sift/round/{n}"), || {
            let mut pairs: Vec<(u64, usize)> = ids
                .iter()
                .enumerate()
                .map(|(i, &id)| (hash.index(0, id, h), i))
                .collect();
            pairs.sort_unstable();
            let mut singles = 0usize;
            let mut i = 0;
            while i < pairs.len() {
                let mut j = i + 1;
                while j < pairs.len() && pairs[j].0 == pairs[i].0 {
                    j += 1;
                }
                if j - i == 1 {
                    singles += 1;
                }
                i = j;
            }
            black_box(singles)
        });
    }
}

fn main() {
    let mut b = Bench::new("structures");
    bench_tag_hash(&mut b);
    bench_polling_tree(&mut b);
    bench_bitvec(&mut b);
    bench_singleton_sift(&mut b);
    b.finish();
}
