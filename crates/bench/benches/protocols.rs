//! End-to-end simulator throughput: one full inventory per protocol.
//! (The *protocol-metric* regeneration lives in the `repro` binary; these
//! benches measure how fast the simulator itself runs, which is what caps
//! Monte-Carlo experiment turnaround.) Runs on the in-repo harness
//! (`rfid_bench::Bench`), so `cargo bench` needs nothing from crates-io.

use std::hint::black_box;

use rfid_baselines::{CppConfig, MicConfig};
use rfid_bench::Bench;
use rfid_estimate::EstimationProtocol;
use rfid_identify::{BinarySplitConfig, QAlgorithmConfig, QueryTreeConfig};
use rfid_protocols::{EhppConfig, HppConfig, PollingProtocol, TppConfig};
use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

fn population(n: usize) -> TagPopulation {
    TagPopulation::sequential(n, |_| BitVec::from_value(1, 1))
}

fn run_once(protocol: &dyn PollingProtocol, n: usize, seed: u64) -> f64 {
    let mut ctx = SimContext::new(population(n), &SimConfig::paper(seed));
    protocol.run(&mut ctx).total_time.as_secs()
}

fn bench_full_runs(b: &mut Bench) {
    let n = 10_000;
    let protocols: Vec<(&str, Box<dyn PollingProtocol>)> = vec![
        ("cpp", Box::new(CppConfig::default().into_protocol())),
        ("hpp", Box::new(HppConfig::default().into_protocol())),
        ("ehpp", Box::new(EhppConfig::default().into_protocol())),
        ("tpp", Box::new(TppConfig::default().into_protocol())),
        ("mic", Box::new(MicConfig::default().into_protocol())),
    ];
    for (name, protocol) in &protocols {
        let mut seed = 0u64;
        b.bench(&format!("inventory/{name}/{n}"), || {
            seed += 1;
            black_box(run_once(protocol.as_ref(), n, seed))
        });
    }
}

fn bench_tpp_scaling(b: &mut Bench) {
    let tpp = TppConfig::default().into_protocol();
    for n in [1_000usize, 10_000, 100_000] {
        let mut seed = 0u64;
        b.bench(&format!("tpp_scaling/{n}"), || {
            seed += 1;
            black_box(run_once(&tpp, n, seed))
        });
    }
}

fn bench_identification(b: &mut Bench) {
    let n = 2_000;
    let protocols: Vec<(&str, Box<dyn PollingProtocol>)> = vec![
        (
            "q_algo",
            Box::new(QAlgorithmConfig::default().into_protocol()),
        ),
        (
            "query_tree",
            Box::new(QueryTreeConfig::default().into_protocol()),
        ),
        (
            "bin_split",
            Box::new(BinarySplitConfig::default().into_protocol()),
        ),
    ];
    for (name, protocol) in &protocols {
        let mut seed = 0u64;
        b.bench(&format!("identification/{name}/{n}"), || {
            seed += 1;
            black_box(run_once(protocol.as_ref(), n, seed))
        });
    }
}

fn bench_estimation(b: &mut Bench) {
    for n in [1_000usize, 10_000, 100_000] {
        let mut seed = 0u64;
        b.bench(&format!("estimation/{n}"), || {
            seed += 1;
            let mut ctx = SimContext::new(population(n), &SimConfig::paper(seed));
            black_box(EstimationProtocol::default().run(&mut ctx).estimate)
        });
    }
}

fn main() {
    let mut b = Bench::new("protocols");
    b.sample_size(10);
    bench_full_runs(&mut b);
    bench_tpp_scaling(&mut b);
    bench_identification(&mut b);
    bench_estimation(&mut b);
    b.finish();
}
