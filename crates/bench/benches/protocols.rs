//! End-to-end simulator throughput: one full inventory per protocol.
//! (The *protocol-metric* regeneration lives in the `repro` binary; these
//! benches measure how fast the simulator itself runs, which is what caps
//! Monte-Carlo experiment turnaround.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rfid_baselines::{CppConfig, MicConfig};
use rfid_estimate::EstimationProtocol;
use rfid_identify::{BinarySplitConfig, QAlgorithmConfig, QueryTreeConfig};
use rfid_protocols::{EhppConfig, HppConfig, PollingProtocol, TppConfig};
use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

fn population(n: usize) -> TagPopulation {
    TagPopulation::sequential(n, |_| BitVec::from_value(1, 1))
}

fn run_once(protocol: &dyn PollingProtocol, n: usize, seed: u64) -> f64 {
    let mut ctx = SimContext::new(population(n), &SimConfig::paper(seed));
    protocol.run(&mut ctx).total_time.as_secs()
}

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("inventory");
    group.sample_size(10);
    let n = 10_000;
    let protocols: Vec<(&str, Box<dyn PollingProtocol>)> = vec![
        ("cpp", Box::new(CppConfig::default().into_protocol())),
        ("hpp", Box::new(HppConfig::default().into_protocol())),
        ("ehpp", Box::new(EhppConfig::default().into_protocol())),
        ("tpp", Box::new(TppConfig::default().into_protocol())),
        ("mic", Box::new(MicConfig::default().into_protocol())),
    ];
    for (name, protocol) in &protocols {
        group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(protocol.as_ref(), n, seed))
            })
        });
    }
    group.finish();
}

fn bench_tpp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpp_scaling");
    group.sample_size(10);
    let tpp = TppConfig::default().into_protocol();
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(&tpp, n, seed))
            })
        });
    }
    group.finish();
}

fn bench_identification(c: &mut Criterion) {
    let mut group = c.benchmark_group("identification");
    group.sample_size(10);
    let n = 2_000;
    let protocols: Vec<(&str, Box<dyn PollingProtocol>)> = vec![
        ("q_algo", Box::new(QAlgorithmConfig::default().into_protocol())),
        ("query_tree", Box::new(QueryTreeConfig::default().into_protocol())),
        ("bin_split", Box::new(BinarySplitConfig::default().into_protocol())),
    ];
    for (name, protocol) in &protocols {
        group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(protocol.as_ref(), n, seed))
            })
        });
    }
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimation");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut ctx = SimContext::new(population(n), &SimConfig::paper(seed));
                black_box(EstimationProtocol::default().run(&mut ctx).estimate)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_runs,
    bench_tpp_scaling,
    bench_identification,
    bench_estimation
);
criterion_main!(benches);
