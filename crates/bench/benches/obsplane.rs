//! Profiling-plane overhead and bit-identity gates (DESIGN.md §14).
//!
//! Three gates, all written to `BENCH_obsplane.json` (schema:
//! `{"group":"obsplane","results":[...]}`) for `obs_report
//! --check-obsplane` and `scripts/verify.sh`:
//!
//! 1. **Disabled span path is free.** `SimContext::span_enter/span_exit`
//!    guard on a cold `is_enabled()` flag exactly like the trace log; a
//!    full HPP run with profiling compiled in but disabled must cost no
//!    more than the *profiled* run plus 5 % timer headroom, best-of-sample
//!    (the mean is at the mercy of scheduler noise on sub-100 µs runs).
//! 2. **Enabled profiling is bounded.** A 100 k-tag HPP session with full
//!    profiling (spans on every session/pass/round/poll) must stay within
//!    `ENABLED_CEILING`× the unprofiled run — the profiler is two clock
//!    reads and a last-child-cached trie walk per span, not an allocation.
//! 3. **Profiling never perturbs the run.** On an impaired traced run, the
//!    final report JSON and the FNV-1a digest of the full event trace must
//!    be bit-identical with profiling on and off: the profiler reads the
//!    sim clock but never touches RNG, counters, or the trace.

use std::hint::black_box;
use std::time::Instant;

use rfid_bench::{find_target_dir, fnv64, Bench};
use rfid_protocols::{HppConfig, Session};
use rfid_system::{BitVec, FaultModel, Json, SimConfig, SimContext, TagPopulation, ToJson};

/// Population for the disabled-path and bit-identity gates.
const N_SMALL: usize = 500;
/// Population for the enabled-overhead gate.
const N_LARGE: usize = 100_000;
/// Disabled-path headroom: off must cost ≤ 1.05 × on, best-of-sample.
const DISABLED_CEILING: f64 = 1.05;
/// Enabled-path ceiling: full profiling ≤ 3 × the unprofiled run.
const ENABLED_CEILING: f64 = 3.0;

fn session_run(n: usize, cfg: &SimConfig) -> SimContext {
    let pop = TagPopulation::sequential(n, |i| BitVec::from_value((i % 2) as u64, 1));
    let mut ctx = SimContext::new(pop, cfg);
    let protocol = HppConfig::default().into_protocol();
    let end = Session::open(&protocol, &ctx).run(&mut ctx);
    assert!(end.is_complete(), "HPP must complete on this channel");
    ctx
}

/// Best-of-`k` wall time of one full session run, nanoseconds.
fn best_of(k: usize, n: usize, cfg: &SimConfig) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..k {
        let start = Instant::now();
        black_box(session_run(n, cfg).counters.polls);
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Builds one gate row. `ratio` is the caller's gated quotient (off/on for
/// the disabled gate, on/off for the enabled one) and must stay ≤ `ceiling`.
fn gate_result(
    name: &str,
    n: usize,
    off_ns: f64,
    on_ns: f64,
    ratio: f64,
    ceiling: f64,
) -> (Json, bool) {
    let gated = ratio <= ceiling;
    println!(
        "obsplane/{name}: off {off_ns:.0} ns, on {on_ns:.0} ns, \
         ratio {ratio:.2} (ceiling {ceiling})"
    );
    let json = Json::Obj(vec![
        ("name".to_string(), name.to_json()),
        ("n".to_string(), (n as u64).to_json()),
        ("off_ns".to_string(), off_ns.to_json()),
        ("on_ns".to_string(), on_ns.to_json()),
        ("ratio".to_string(), ratio.to_json()),
        ("ceiling".to_string(), ceiling.to_json()),
        ("gated".to_string(), gated.to_json()),
    ]);
    (json, gated)
}

fn main() {
    let mut results: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // Gate 1: the disabled span path. Functional zero-cost proof first —
    // an unprofiled run must record nothing at all.
    let off_cfg = SimConfig::paper(7);
    let on_cfg = SimConfig::paper(7).with_profile();
    let quiet = session_run(N_SMALL, &off_cfg);
    assert!(!quiet.profiler.is_enabled(), "profiler must stay off");
    assert!(quiet.profiler.is_empty(), "disabled run recorded spans");
    let profiled = session_run(N_SMALL, &on_cfg);
    assert!(!profiled.profiler.is_empty(), "profiled run lost its spans");

    let mut b = Bench::new("obsplane");
    b.sample_size(20);
    b.bench(&format!("hpp_{N_SMALL}/profile_disabled"), || {
        black_box(session_run(N_SMALL, &off_cfg).counters.polls)
    });
    b.bench(&format!("hpp_{N_SMALL}/profile_enabled"), || {
        black_box(session_run(N_SMALL, &on_cfg).counters.polls)
    });
    let min_of = |name: &str| {
        b.results()
            .iter()
            .find(|m| m.name.contains(name))
            .map(|m| m.nanos.min)
    };
    if let (Some(off), Some(on)) = (min_of("profile_disabled"), min_of("profile_enabled")) {
        let (json, ok) = gate_result(
            "disabled_span_path",
            N_SMALL,
            off,
            on,
            off / on,
            DISABLED_CEILING,
        );
        results.push(json);
        if !ok {
            failures.push("disabled span path costs more than the profiled run".into());
        }
    }

    // Gate 2: full profiling on a 100 k-tag session stays under the
    // ceiling. One cold run each way would measure the allocator; take the
    // best of three so both sides see warm caches.
    let off = best_of(3, N_LARGE, &off_cfg);
    let on = best_of(3, N_LARGE, &on_cfg);
    let (json, ok) = gate_result(
        "enabled_profiling_overhead",
        N_LARGE,
        off,
        on,
        on / off,
        ENABLED_CEILING,
    );
    results.push(json);
    if !ok {
        failures.push(format!(
            "enabled profiling overhead exceeds {ENABLED_CEILING}×"
        ));
    }

    // Gate 3: bit-identity on an impaired traced run — profiling must not
    // move a single RNG draw, counter, or trace event.
    let fault = FaultModel::perfect().with_downlink_loss(0.3);
    let base_cfg = SimConfig::paper(11).with_trace().with_fault(fault.clone());
    let prof_cfg = SimConfig::paper(11)
        .with_trace()
        .with_fault(fault)
        .with_profile();
    let reported_run = |cfg: &SimConfig| {
        let pop = TagPopulation::sequential(N_SMALL, |i| BitVec::from_value((i % 2) as u64, 1));
        let mut ctx = SimContext::new(pop, cfg);
        let protocol = HppConfig::default().into_protocol();
        let end = Session::open(&protocol, &ctx).run(&mut ctx);
        assert!(end.is_complete(), "HPP must complete under 0.3 loss");
        (end.report().to_json().to_string(), ctx)
    };
    let (plain_report, plain) = reported_run(&base_cfg);
    let (prof_report, profiled) = reported_run(&prof_cfg);
    let report_match = plain_report == prof_report;
    let counters_match = plain.counters == profiled.counters;
    let trace_match = fnv64(&plain.log.to_jsonl()) == fnv64(&profiled.log.to_jsonl());
    let identical = report_match && counters_match && trace_match;
    println!(
        "obsplane/bit_identity: report {report_match}, counters {counters_match}, \
         trace {trace_match}"
    );
    results.push(Json::Obj(vec![
        ("name".to_string(), "bit_identity".to_json()),
        ("n".to_string(), (N_SMALL as u64).to_json()),
        ("report_match".to_string(), report_match.to_json()),
        ("counters_match".to_string(), counters_match.to_json()),
        ("trace_match".to_string(), trace_match.to_json()),
        ("identical".to_string(), identical.to_json()),
    ]));
    if !identical {
        failures.push("profiling perturbed the run".into());
    }

    let report = Json::Obj(vec![
        ("group".to_string(), "obsplane".to_json()),
        ("results".to_string(), Json::Arr(results)),
    ])
    .to_pretty_string();
    let file = "BENCH_obsplane.json";
    let path = find_target_dir()
        .map(|d| d.join(file))
        .unwrap_or_else(|| file.into());
    match std::fs::write(&path, report + "\n") {
        Ok(()) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    if !failures.is_empty() {
        eprintln!("obsplane gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
