//! Daemon serving-layer throughput bench: an in-process fleet on port 0
//! absorbs hundreds of short inventory sessions from concurrent TCP
//! clients, plus a single-connection loopback baseline with no kernel
//! sockets in the path. Per-session wall latency lands in a
//! `Log2Histogram` for percentile reporting; every session must complete
//! (the gate), and the report records sessions/sec alongside the latency
//! distribution.
//!
//! Writes `BENCH_daemon.json` (schema: `{"group":"daemon","results":
//! [{"name","protocol","clients","sessions","expected","completed","n",
//! "sessions_per_sec","latency_p50_us","latency_p90_us","latency_p99_us",
//! "latency_mean_us"}]}`) next to the other bench reports so
//! `scripts/verify.sh` and `obs_report --check-daemon` can gate on it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rfid_bench::find_target_dir;
use rfid_daemon::{serve_connection, Daemon, DaemonClient, RunEnd, Service};
use rfid_obs::Log2Histogram;
use rfid_system::{Json, ToJson};
use rfid_wire::{loopback, OpenRequest, Transport};

const PROTOCOL: &str = "TPP";
const N: u64 = 64;
const INFO_BITS: u64 = 4;

struct CaseResult {
    name: &'static str,
    clients: u64,
    expected: u64,
    completed: u64,
    seconds: f64,
    latencies: Log2Histogram,
}

/// Opens, runs and closes one session; returns whether it completed and
/// its wall latency in µs (clamped to ≥ 1 so log2 percentiles stay
/// positive).
fn one_session<T: Transport>(client: &mut DaemonClient<T>, seed: u64) -> (bool, u64) {
    let started = Instant::now();
    let req = OpenRequest::new(PROTOCOL, N, INFO_BITS, seed);
    let session = client.open(req).expect("open");
    let outcome = match client.run(session, None, |_, _, _, _| {}).expect("run") {
        RunEnd::Done(outcome) => outcome,
        RunEnd::Paused { .. } => panic!("unbounded run paused"),
    };
    client.close(session).expect("close");
    let us = started.elapsed().as_micros().max(1) as u64;
    (outcome.status == "complete", us)
}

/// Hundreds of sessions from concurrent TCP clients against one fleet.
fn tcp_fanout(clients: usize, sessions_per_client: usize) -> CaseResult {
    let daemon = Daemon::bind("127.0.0.1:0").expect("bind");
    let addr = daemon.local_addr();
    let stop = daemon.stop_handle();
    let server = std::thread::spawn(move || daemon.run());

    let started = Instant::now();
    let per_client: Vec<(u64, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = DaemonClient::connect(addr).expect("connect");
                    let mut completed = 0u64;
                    let mut latencies = Vec::with_capacity(sessions_per_client);
                    for s in 0..sessions_per_client {
                        let seed = 1 + (c * sessions_per_client + s) as u64;
                        let (ok, us) = one_session(&mut client, seed);
                        completed += ok as u64;
                        latencies.push(us);
                    }
                    (completed, latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let seconds = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    server.join().expect("daemon thread").expect("daemon ok");

    let mut latencies = Log2Histogram::new();
    let mut completed = 0;
    for (ok, times) in per_client {
        completed += ok;
        for us in times {
            latencies.record(us);
        }
    }
    CaseResult {
        name: "tcp_fanout",
        clients: clients as u64,
        expected: (clients * sessions_per_client) as u64,
        completed,
        seconds,
        latencies,
    }
}

/// The same session stream over the in-memory loopback — the no-kernel
/// baseline the TCP figures are read against.
fn loopback_serial(sessions: usize) -> CaseResult {
    let (server_end, client_end) = loopback();
    let stop = Arc::new(AtomicBool::new(false));
    let server_stop = Arc::clone(&stop);
    let server = std::thread::spawn(move || {
        let mut transport = server_end;
        let mut service = Service::new();
        serve_connection(&mut transport, &mut service, &server_stop)
    });

    let mut client = DaemonClient::new(client_end);
    let mut latencies = Log2Histogram::new();
    let mut completed = 0;
    let started = Instant::now();
    for s in 0..sessions {
        let (ok, us) = one_session(&mut client, 1 + s as u64);
        completed += ok as u64;
        latencies.record(us);
    }
    let seconds = started.elapsed().as_secs_f64();
    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("server thread").expect("serve ok");
    CaseResult {
        name: "loopback_serial",
        clients: 1,
        expected: sessions as u64,
        completed,
        seconds,
        latencies,
    }
}

fn main() {
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .filter(|a| !a.is_empty());
    let mut results: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    let cases: Vec<CaseResult> = [
        (
            "tcp_fanout",
            Box::new(|| tcp_fanout(8, 25)) as Box<dyn Fn() -> CaseResult>,
        ),
        ("loopback_serial", Box::new(|| loopback_serial(50))),
    ]
    .into_iter()
    .filter(|(name, _)| filter.as_deref().map_or(true, |f| name.contains(f)))
    .map(|(_, run)| run())
    .collect();

    for case in &cases {
        let pct = |q: f64| case.latencies.percentile(q).unwrap_or(0) as f64;
        let sessions_per_sec = case.completed as f64 / case.seconds.max(1e-9);
        println!(
            "daemon/{}: {} clients, {}/{} sessions in {:.3}s ({:.0}/s), \
             latency p50≤{:.0}µs p90≤{:.0}µs p99≤{:.0}µs mean {:.0}µs",
            case.name,
            case.clients,
            case.completed,
            case.expected,
            case.seconds,
            sessions_per_sec,
            pct(0.5),
            pct(0.9),
            pct(0.99),
            case.latencies.mean(),
        );
        if case.completed != case.expected {
            failures.push(format!(
                "{}: only {}/{} sessions completed",
                case.name, case.completed, case.expected
            ));
        }
        results.push(Json::Obj(vec![
            ("name".to_string(), case.name.to_json()),
            ("protocol".to_string(), PROTOCOL.to_json()),
            ("clients".to_string(), case.clients.to_json()),
            ("sessions".to_string(), case.expected.to_json()),
            ("expected".to_string(), case.expected.to_json()),
            ("completed".to_string(), case.completed.to_json()),
            ("n".to_string(), N.to_json()),
            ("sessions_per_sec".to_string(), sessions_per_sec.to_json()),
            ("latency_p50_us".to_string(), pct(0.5).to_json()),
            ("latency_p90_us".to_string(), pct(0.9).to_json()),
            ("latency_p99_us".to_string(), pct(0.99).to_json()),
            (
                "latency_mean_us".to_string(),
                case.latencies.mean().to_json(),
            ),
        ]));
    }

    if !results.is_empty() {
        let report = Json::Obj(vec![
            ("group".to_string(), "daemon".to_json()),
            ("results".to_string(), Json::Arr(results)),
        ])
        .to_pretty_string();
        let file = "BENCH_daemon.json";
        let path = find_target_dir()
            .map(|d| d.join(file))
            .unwrap_or_else(|| file.into());
        match std::fs::write(&path, report + "\n") {
            Ok(()) => println!("report: {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    if !failures.is_empty() {
        eprintln!("daemon serving gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
