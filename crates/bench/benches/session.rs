//! Crash-chaos bit-identity gate for the resumable session engine.
//!
//! For every protocol (clean channel) and the four paper protocols
//! (impaired channel), runs the scenario twice: once uninterrupted, and
//! once **killed at a seeded slot boundary** — the session is serialized
//! to a JSON snapshot, the process image is discarded (session + context
//! dropped), and the snapshot is parsed and restored into a fresh context
//! which then runs to completion. The final `Report` JSON and the FNV-1a
//! digest of the full event trace must be bit-identical between the two
//! runs; any drift means checkpoint/restore perturbed an RNG draw, a
//! float accumulation, or a trace event. A recovery case (tiny round
//! budget, unbounded passes) additionally kills the session *between
//! recovery passes* with backoff charged.
//!
//! Writes `BENCH_session.json` (schema: `{"group":"session","results":
//! [{"name","channel","kill_step","snapshot_bytes","passes","identical"}]}`)
//! next to the other bench reports so `scripts/verify.sh` and
//! `obs_report --check-session` can gate on it.

use rfid_baselines::{CodedPollingConfig, CppConfig, EcppConfig, FsaConfig, LowerBound, MicConfig};
use rfid_bench::{find_target_dir, fnv64};
use rfid_hash::Xoshiro256;
use rfid_identify::{BinarySplitConfig, QAlgorithmConfig, QueryTreeConfig};
use rfid_protocols::{
    EhppConfig, HppConfig, PollingProtocol, RecoveryPolicy, Session, SessionEnd, TppConfig,
};
use rfid_system::{FaultModel, GilbertElliott, Json, SimConfig, SimContext, ToJson};
use rfid_workloads::Scenario;

fn all_protocols() -> Vec<Box<dyn PollingProtocol>> {
    vec![
        Box::new(CppConfig::default().into_protocol()),
        Box::new(EcppConfig::default().into_protocol()),
        Box::new(CodedPollingConfig::default().into_protocol()),
        Box::new(HppConfig::default().into_protocol()),
        Box::new(EhppConfig::default().into_protocol()),
        Box::new(TppConfig::default().into_protocol()),
        Box::new(MicConfig::default().into_protocol()),
        Box::new(FsaConfig::default().into_protocol()),
        Box::new(LowerBound),
        Box::new(QueryTreeConfig::default().into_protocol()),
        Box::new(BinarySplitConfig::default().into_protocol()),
        Box::new(QAlgorithmConfig::default().into_protocol()),
    ]
}

fn impaired_fault() -> FaultModel {
    FaultModel::perfect()
        .with_downlink_loss(0.2)
        .with_corruption(0.2)
        .with_burst(GilbertElliott::new(0.1, 0.5, 0.0, 0.8))
}

struct Outcome {
    kill_step: u64,
    snapshot_bytes: usize,
    passes: u64,
    identical: bool,
    detail: String,
}

/// Runs the kill/snapshot/restore/finish cycle and compares against the
/// uninterrupted run. The reference run is driven one step at a time to
/// count the *killable* boundaries, and the seeded kill point is drawn
/// from `[1, boundaries]` — so every case genuinely crashes mid-run and
/// exercises snapshot → parse → restore, never a degenerate full run.
fn chaos_case(
    protocol: &dyn PollingProtocol,
    scenario: &Scenario,
    cfg: &SimConfig,
    policy: Option<&RecoveryPolicy>,
    rng: &mut Xoshiro256,
) -> Outcome {
    // Uninterrupted reference, stepped manually to count kill boundaries.
    let mut ctx = SimContext::new(scenario.build_population(), cfg);
    let mut session = Session::open(protocol, &ctx);
    if let Some(p) = policy {
        session = session.with_policy(p.clone());
    }
    let mut boundaries = 0u64;
    let reference = loop {
        match session.run_for(&mut ctx, 1) {
            Some(end) => break end,
            None => boundaries += 1,
        }
    };
    let SessionEnd::Complete {
        report: ref_report,
        passes: ref_passes,
    } = reference
    else {
        return Outcome {
            kill_step: 0,
            snapshot_bytes: 0,
            passes: 0,
            identical: false,
            detail: format!("reference run did not complete: {reference:?}"),
        };
    };
    let ref_json = ref_report.to_json().to_string();
    let ref_trace = fnv64(&ctx.log.to_jsonl());
    let kill_step = 1 + rng.below(boundaries.max(1));

    // Killed run: crash at the seeded step, survive only as a JSON string.
    let mut ctx = SimContext::new(scenario.build_population(), cfg);
    let mut session = Session::open(protocol, &ctx);
    if let Some(p) = policy {
        session = session.with_policy(p.clone());
    }
    let (snapshot_bytes, end, ctx) = match session.run_for(&mut ctx, kill_step) {
        Some(end) => (0, end, ctx),
        None => {
            let snap = session.snapshot(&ctx, cfg).to_string();
            drop(session);
            drop(ctx);
            let doc = match Json::parse(&snap) {
                Ok(doc) => doc,
                Err(e) => {
                    return Outcome {
                        kill_step,
                        snapshot_bytes: snap.len(),
                        passes: 0,
                        identical: false,
                        detail: format!("snapshot failed to parse: {e}"),
                    }
                }
            };
            match Session::restore(protocol, &doc) {
                Ok((mut ctx, mut session)) => {
                    let end = session.run(&mut ctx);
                    (snap.len(), end, ctx)
                }
                Err(e) => {
                    return Outcome {
                        kill_step,
                        snapshot_bytes: snap.len(),
                        passes: 0,
                        identical: false,
                        detail: format!("snapshot failed to restore: {e}"),
                    }
                }
            }
        }
    };
    let SessionEnd::Complete { report, passes } = end else {
        return Outcome {
            kill_step,
            snapshot_bytes,
            passes: 0,
            identical: false,
            detail: format!("restored run did not complete: {end:?}"),
        };
    };
    let json = report.to_json().to_string();
    let trace = fnv64(&ctx.log.to_jsonl());

    let mut mismatches = Vec::new();
    if json != ref_json {
        mismatches.push("report JSON".to_string());
    }
    if trace != ref_trace {
        mismatches.push(format!("trace digest {trace:#018x} != {ref_trace:#018x}"));
    }
    if passes != ref_passes {
        mismatches.push(format!("passes {passes} != {ref_passes}"));
    }
    Outcome {
        kill_step,
        snapshot_bytes,
        passes,
        identical: mismatches.is_empty(),
        detail: if mismatches.is_empty() {
            "bit-identical".to_string()
        } else {
            mismatches.join("; ")
        },
    }
}

fn main() {
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .filter(|a| !a.is_empty());
    let mut results: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    // Seeded kill-point stream: reproducible chaos, different per case.
    let mut chaos_rng = Xoshiro256::seed_from_u64(0x5E55_1017);

    let run = |label: String,
               name: &str,
               channel: &str,
               outcome: Outcome,
               results: &mut Vec<Json>,
               failures: &mut Vec<String>| {
        println!(
            "session/{label}: kill@{} snapshot {}B passes {} -> {}",
            outcome.kill_step, outcome.snapshot_bytes, outcome.passes, outcome.detail
        );
        if !outcome.identical {
            failures.push(format!("{label}: {}", outcome.detail));
        }
        results.push(Json::Obj(vec![
            ("name".to_string(), name.to_json()),
            ("channel".to_string(), channel.to_json()),
            ("kill_step".to_string(), outcome.kill_step.to_json()),
            (
                "snapshot_bytes".to_string(),
                (outcome.snapshot_bytes as u64).to_json(),
            ),
            ("passes".to_string(), outcome.passes.to_json()),
            ("identical".to_string(), outcome.identical.to_json()),
        ]));
    };

    // Clean channel: all 12 protocols at the golden scenario.
    let clean = Scenario::uniform(150, 4).with_seed(31);
    let clean_cfg = SimConfig::paper(clean.protocol_seed()).with_trace();
    for protocol in all_protocols() {
        let label = format!("{}_clean", protocol.name());
        if let Some(f) = &filter {
            if !label.contains(f.as_str()) {
                continue;
            }
        }
        let outcome = chaos_case(protocol.as_ref(), &clean, &clean_cfg, None, &mut chaos_rng);
        run(
            label,
            protocol.name(),
            "clean",
            outcome,
            &mut results,
            &mut failures,
        );
    }

    // Impaired channel: the four paper protocols under loss + corruption +
    // Gilbert–Elliott bursts, so fault-model state is live at the kill.
    let impaired = Scenario::uniform(150, 4).with_seed(99);
    let impaired_cfg = SimConfig::paper(impaired.protocol_seed())
        .with_trace()
        .with_fault(impaired_fault());
    let paper: Vec<Box<dyn PollingProtocol>> = vec![
        Box::new(HppConfig::default().into_protocol()),
        Box::new(EhppConfig::default().into_protocol()),
        Box::new(TppConfig::default().into_protocol()),
        Box::new(MicConfig::default().into_protocol()),
    ];
    for protocol in paper {
        let label = format!("{}_impaired", protocol.name());
        if let Some(f) = &filter {
            if !label.contains(f.as_str()) {
                continue;
            }
        }
        let outcome = chaos_case(
            protocol.as_ref(),
            &impaired,
            &impaired_cfg,
            None,
            &mut chaos_rng,
        );
        run(
            label,
            protocol.name(),
            "impaired",
            outcome,
            &mut results,
            &mut failures,
        );
    }

    // Recovery case: a 2-round budget forces several passes even on a clean
    // channel; the seeded kill lands inside the multi-pass schedule.
    let label = "HPP_recovery".to_string();
    let skip = filter.as_ref().is_some_and(|f| !label.contains(f.as_str()));
    if !skip {
        let protocol = HppConfig {
            max_rounds: 2,
            ..HppConfig::default()
        }
        .into_protocol();
        let policy = RecoveryPolicy::unbounded();
        let outcome = chaos_case(&protocol, &clean, &clean_cfg, Some(&policy), &mut chaos_rng);
        run(
            label,
            "HPP",
            "recovery",
            outcome,
            &mut results,
            &mut failures,
        );
    }

    if !results.is_empty() {
        let report = Json::Obj(vec![
            ("group".to_string(), "session".to_json()),
            ("results".to_string(), Json::Arr(results)),
        ])
        .to_pretty_string();
        let file = "BENCH_session.json";
        let path = find_target_dir()
            .map(|d| d.join(file))
            .unwrap_or_else(|| file.into());
        match std::fs::write(&path, report + "\n") {
            Ok(()) => println!("report: {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    if !failures.is_empty() {
        eprintln!("crash-chaos bit-identity gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
