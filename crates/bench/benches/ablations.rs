//! Ablation benches for the design choices DESIGN.md §7 calls out.
//! Each bench measures the *simulated protocol metric* (total inventory
//! time on the C1G2 clock) rather than host CPU time: Criterion's iteration
//! wall-time tracks the simulator work, while the printed custom metric is
//! what the paper's tables report. Run `repro ablations` for the
//! metric-level summary table.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rfid_baselines::MicConfig;
use rfid_protocols::{EhppConfig, IndexRule, PollingProtocol, TppConfig};
use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

fn run_once(protocol: &dyn PollingProtocol, n: usize, seed: u64) -> f64 {
    let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
    let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
    protocol.run(&mut ctx).total_time.as_secs()
}

fn ablation_tpp_h(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tpp_h");
    group.sample_size(10);
    let n = 10_000;
    for (name, rule) in [
        ("eq15", IndexRule::Eq15Optimal),
        ("hpp_rule", IndexRule::HppRule),
    ] {
        let protocol = TppConfig {
            index_rule: rule,
            ..TppConfig::default()
        }
        .into_protocol();
        group.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(&protocol, n, seed))
            })
        });
    }
    group.finish();
}

fn ablation_ehpp_subset(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ehpp_subset");
    group.sample_size(10);
    let n = 10_000;
    let n_star = EhppConfig::default().effective_subset_size();
    for (name, size) in [("half", n_star / 2), ("thm1", n_star), ("double", n_star * 2)] {
        let protocol = EhppConfig {
            subset_size: Some(size),
            ..EhppConfig::default()
        }
        .into_protocol();
        group.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(&protocol, n, seed))
            })
        });
    }
    group.finish();
}

fn ablation_mic_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mic_k");
    group.sample_size(10);
    let n = 10_000;
    for k in [1usize, 4, 7] {
        let protocol = MicConfig {
            k,
            ..MicConfig::default()
        }
        .into_protocol();
        group.bench_with_input(BenchmarkId::from_parameter(k), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(&protocol, n, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_tpp_h, ablation_ehpp_subset, ablation_mic_k);
criterion_main!(benches);
