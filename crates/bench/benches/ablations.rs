//! Ablation benches for the design choices DESIGN.md §7 calls out.
//! Each bench measures the *simulated protocol metric* (total inventory
//! time on the C1G2 clock) rather than host CPU time: the harness's
//! iteration wall-time tracks the simulator work, while the printed custom
//! metric is what the paper's tables report. Run `repro ablations` for the
//! metric-level summary table.

use std::hint::black_box;

use rfid_baselines::MicConfig;
use rfid_bench::Bench;
use rfid_protocols::{EhppConfig, IndexRule, PollingProtocol, TppConfig};
use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

fn run_once(protocol: &dyn PollingProtocol, n: usize, seed: u64) -> f64 {
    let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
    let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
    protocol.run(&mut ctx).total_time.as_secs()
}

fn ablation_tpp_h(b: &mut Bench) {
    let n = 10_000;
    for (name, rule) in [
        ("eq15", IndexRule::Eq15Optimal),
        ("hpp_rule", IndexRule::HppRule),
    ] {
        let protocol = TppConfig {
            index_rule: rule,
            ..TppConfig::default()
        }
        .into_protocol();
        let mut seed = 0u64;
        b.bench(&format!("ablation_tpp_h/{name}"), || {
            seed += 1;
            black_box(run_once(&protocol, n, seed))
        });
    }
}

fn ablation_ehpp_subset(b: &mut Bench) {
    let n = 10_000;
    let n_star = EhppConfig::default().effective_subset_size();
    for (name, size) in [
        ("half", n_star / 2),
        ("thm1", n_star),
        ("double", n_star * 2),
    ] {
        let protocol = EhppConfig {
            subset_size: Some(size),
            ..EhppConfig::default()
        }
        .into_protocol();
        let mut seed = 0u64;
        b.bench(&format!("ablation_ehpp_subset/{name}"), || {
            seed += 1;
            black_box(run_once(&protocol, n, seed))
        });
    }
}

fn ablation_mic_k(b: &mut Bench) {
    let n = 10_000;
    for k in [1usize, 4, 7] {
        let protocol = MicConfig {
            k,
            ..MicConfig::default()
        }
        .into_protocol();
        let mut seed = 0u64;
        b.bench(&format!("ablation_mic_k/{k}"), || {
            seed += 1;
            black_box(run_once(&protocol, n, seed))
        });
    }
}

fn main() {
    let mut b = Bench::new("ablations");
    b.sample_size(10);
    ablation_tpp_h(&mut b);
    ablation_ehpp_subset(&mut b);
    ablation_mic_k(&mut b);
    b.finish();
}
