//! A dependency-free wall-clock micro-bench harness.
//!
//! Stands in for Criterion with the subset these benches need: per-bench
//! iteration-count calibration against a target sample duration, repeated
//! samples summarized by [`crate::stats::Summary`], an optional substring
//! filter from the command line, and machine-readable `BENCH_<group>.json`
//! reports written through `rfid_system::json`. Building it in-repo keeps
//! `cargo bench` working offline with an empty cargo registry.
//!
//! A bench binary is a plain `fn main()` (the workspace sets
//! `harness = false` for every `[[bench]]` target):
//!
//! ```no_run
//! use rfid_bench::Bench;
//!
//! let mut b = Bench::new("example");
//! b.bench("add", || std::hint::black_box(2u64) + 2);
//! b.finish();
//! ```

use std::time::Instant;

use rfid_system::{Json, ToJson};

use crate::stats::Summary;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;
/// Calibration aims for samples of roughly this duration.
const TARGET_SAMPLE_NANOS: u128 = 5_000_000;
/// Never fold more than this many iterations into one sample.
const MAX_ITERS_PER_SAMPLE: u64 = 1_000_000;

/// One benchmark's timing result (per-iteration nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name within its group.
    pub name: String,
    /// Iterations folded into each timed sample.
    pub iters_per_sample: u64,
    /// Per-iteration nanoseconds across the samples.
    pub nanos: Summary,
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), self.name.to_json()),
            (
                "iters_per_sample".to_string(),
                self.iters_per_sample.to_json(),
            ),
            ("samples".to_string(), self.nanos.count.to_json()),
            ("mean_ns".to_string(), self.nanos.mean.to_json()),
            ("std_ns".to_string(), self.nanos.std.to_json()),
            ("min_ns".to_string(), self.nanos.min.to_json()),
            ("max_ns".to_string(), self.nanos.max.to_json()),
        ])
    }
}

/// A group of related benchmarks sharing a report file.
#[derive(Debug)]
pub struct Bench {
    group: String,
    samples: usize,
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Bench {
    /// A new group. Reads the process arguments: the first argument that is
    /// not a `-`-flag (cargo passes `--bench`) becomes a substring filter on
    /// benchmark names, mirroring `cargo bench <filter>`.
    pub fn new(group: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Bench {
            group: group.to_string(),
            samples: DEFAULT_SAMPLES,
            filter,
            results: Vec::new(),
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples >= 2, "need at least 2 samples");
        self.samples = samples;
        self
    }

    /// Times `f`, recording per-iteration nanoseconds. The iteration count
    /// per sample is calibrated from one untimed warm-up run so that cheap
    /// operations are batched while multi-millisecond runs execute once per
    /// sample.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, MAX_ITERS_PER_SAMPLE as u128) as u64;

        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let nanos = Summary::of(&per_iter);
        println!(
            "{}/{name}: {} ± {} ({} samples × {iters} iters)",
            self.group,
            format_nanos(nanos.mean),
            format_nanos(nanos.std),
            nanos.count,
        );
        self.results.push(Measurement {
            name: name.to_string(),
            iters_per_sample: iters,
            nanos,
        });
    }

    /// The measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the group report as pretty JSON.
    pub fn report_json(&self) -> String {
        Json::Obj(vec![
            ("group".to_string(), self.group.to_json()),
            ("results".to_string(), self.results.to_json()),
        ])
        .to_pretty_string()
    }

    /// Writes `BENCH_<group>.json` into the nearest enclosing `target/`
    /// directory (cargo runs benches from the package dir, so the workspace
    /// `target/` may be a few levels up; falls back to the current
    /// directory) and returns the results. Skipped when a filter excluded
    /// every benchmark.
    pub fn finish(self) -> Vec<Measurement> {
        if !self.results.is_empty() {
            let file = format!("BENCH_{}.json", self.group);
            let path = find_target_dir()
                .map(|d| d.join(&file))
                .unwrap_or_else(|| file.clone().into());
            match std::fs::write(&path, self.report_json() + "\n") {
                Ok(()) => println!("report: {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
        self.results
    }
}

/// FNV-1a over a string — cheap, stable, and order sensitive. The shared
/// digest for trace bit-identity gates (golden tests, the crash-chaos
/// session bench, the daemon's wire reports, `repro session`): any
/// reordered, dropped, or extra event in a serialized trace changes the
/// digest. The definition lives in `rfid-hash` so the serving layer can
/// digest traces without depending on the bench harness.
pub use rfid_hash::fnv64;

/// The nearest `target/` directory at or above the current directory —
/// honours `CARGO_TARGET_DIR` when set. Shared by the bench reports
/// (`BENCH_*.json`) and the sweep engine's default cache root.
pub fn find_target_dir() -> Option<std::path::PathBuf> {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        let dir = std::path::PathBuf::from(dir);
        if dir.is_dir() {
            return Some(dir);
        }
    }
    let mut at = std::env::current_dir().ok()?;
    loop {
        let candidate = at.join("target");
        if candidate.is_dir() {
            return Some(candidate);
        }
        if !at.pop() {
            return None;
        }
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_bench(group: &str) -> Bench {
        // Tests construct directly to bypass the CLI-filter sniffing (the
        // test runner's own arguments must not filter benches).
        Bench {
            group: group.to_string(),
            samples: 3,
            filter: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn bench_records_positive_timings() {
        let mut b = quiet_bench("t");
        b.bench("count", || (0..1000u64).sum::<u64>());
        assert_eq!(b.results().len(), 1);
        let m = &b.results()[0];
        assert!(m.nanos.mean > 0.0);
        assert!(m.iters_per_sample >= 1);
        assert_eq!(m.nanos.count, 3);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut b = quiet_bench("t");
        b.filter = Some("tree".to_string());
        b.bench("hash", || 1u64);
        b.bench("tree_build", || 1u64);
        assert_eq!(b.results().len(), 1);
        assert_eq!(b.results()[0].name, "tree_build");
    }

    #[test]
    fn report_json_is_parseable_and_tagged() {
        let mut b = quiet_bench("grp");
        b.bench("x", || 7u64);
        let parsed = Json::parse(&b.report_json()).expect("valid JSON");
        assert_eq!(parsed.get("group").unwrap().as_str().unwrap(), "grp");
        let results = parsed.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("name").unwrap().as_str().unwrap(), "x");
        assert!(results[0].get("mean_ns").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn format_nanos_picks_sane_units() {
        assert_eq!(format_nanos(12.0), "12.0 ns");
        assert_eq!(format_nanos(12_500.0), "12.500 µs");
        assert_eq!(format_nanos(3_200_000.0), "3.200 ms");
        assert_eq!(format_nanos(2.5e9), "2.500 s");
    }
}
