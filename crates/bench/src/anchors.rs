//! Paper-reported anchor values, for side-by-side printing in `repro` and
//! assertion in EXPERIMENTS.md. Only values explicitly present in the text
//! are recorded; `None` cells were not legible in the source.

/// One table row: protocol name and per-`n` execution times in seconds.
#[derive(Debug, Clone, Copy)]
pub struct TableAnchor {
    /// Protocol label as printed in the paper.
    pub protocol: &'static str,
    /// Times for n = 100, 1 000, 10 000, 100 000 (None = not quoted).
    pub seconds: [Option<f64>; 4],
}

/// Population sizes of the table columns.
pub const TABLE_NS: [u64; 4] = [100, 1_000, 10_000, 100_000];

/// Table I (l = 1 bit): the n = 10⁴ column is fully quoted in the text.
pub const TABLE1: [TableAnchor; 6] = [
    TableAnchor {
        protocol: "CPP",
        seconds: [None, None, Some(37.70), None],
    },
    TableAnchor {
        protocol: "HPP",
        seconds: [None, None, Some(8.12), None],
    },
    TableAnchor {
        protocol: "EHPP",
        seconds: [None, None, Some(6.63), None],
    },
    TableAnchor {
        protocol: "MIC",
        seconds: [None, None, Some(5.15), None],
    },
    TableAnchor {
        protocol: "TPP",
        seconds: [None, None, Some(4.39), None],
    },
    TableAnchor {
        protocol: "LowerBound",
        seconds: [None, None, Some(3.25), None],
    },
];

/// Table II (l = 16): quoted as ratios of TPP's time at n = 10⁴.
/// TPP = 85.7 % of MIC, 78.3 % of EHPP, 68.6 % of HPP, 19.6 % of CPP.
pub const TABLE2_TPP_RATIOS: [(&str, f64); 4] = [
    ("MIC", 0.857),
    ("EHPP", 0.783),
    ("HPP", 0.686),
    ("CPP", 0.196),
];

/// Table III (l = 32): quoted as multiples of the lower bound at n = 10⁴.
pub const TABLE3_LB_RATIOS: [(&str, f64); 5] = [
    ("TPP", 1.10),
    ("MIC", 1.28),
    ("EHPP", 1.31),
    ("HPP", 1.45),
    ("CPP", 4.14),
];

/// Fig. 10 anchors: average polling-vector lengths (bits).
pub const FIG10_HPP_AT_1K: f64 = 9.5;
/// HPP at n = 10⁵ (Fig. 10).
pub const FIG10_HPP_AT_100K: f64 = 16.0;
/// EHPP plateau (Fig. 10, l_c = 128 with 32-bit round initiations).
pub const FIG10_EHPP: f64 = 9.0;
/// TPP plateau (Fig. 10).
pub const FIG10_TPP: f64 = 3.06;

/// Fig. 9 anchor: TPP's analytic average, stable around 3.38 bits.
pub const FIG9_TPP_ANALYTIC: f64 = 3.38;

/// Eq. (16): the global TPP bound 2 + 1/ln 2.
pub fn eq16_bound() -> f64 {
    2.0 + 1.0 / core::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quotes_are_internally_consistent() {
        // TPP = 1.35 × lower bound (quoted in the text).
        let tpp = TABLE1[4].seconds[2].unwrap();
        let lb = TABLE1[5].seconds[2].unwrap();
        assert!((tpp / lb - 1.35).abs() < 0.01);
        // TPP is 14.8 % below MIC (quoted).
        let mic = TABLE1[3].seconds[2].unwrap();
        assert!(((mic - tpp) / mic - 0.148).abs() < 0.01);
    }

    #[test]
    fn eq16_matches_the_abstract() {
        assert!((eq16_bound() - 3.44).abs() < 0.01);
    }
}
