//! Deterministic parallel sweep engine for the evaluation grid.
//!
//! `repro` regenerates the paper's figures and tables by walking a grid of
//! *cells* — protocol row × population size × payload width — each cell a
//! block of Monte-Carlo runs. This module schedules those cells across
//! cores without changing a single output bit:
//!
//! * **Jobs.** Every cell expands into run-blocks of at most
//!   [`SweepEngine::with_run_block`] runs. Run `r` of a cell always
//!   simulates under `split_seed(scenario.seed, r)` (via
//!   [`Scenario::for_run`]), so results are independent of block size,
//!   worker count and scheduling order.
//! * **Scheduling.** Workers (`std::thread::scope`) pull jobs from a shared
//!   atomic cursor — work-stealing in the only sense that matters here:
//!   whichever thread is free takes the next job. Results land in
//!   cell-index/run-index order, and all reductions (summaries, counter
//!   merges) happen in that fixed order, which is why parallel output is
//!   bit-identical to `--workers 1`.
//! * **Caching.** With a cache directory attached, each job's result is
//!   persisted under a content-addressed key — an FNV-1a hash over the
//!   protocol label, its serialized config, the scenario JSON (including
//!   the master seed), the run-block range and a code-version salt
//!   ([`CACHE_SALT`]) — as one JSONL line of `Report`s. A warm cache skips
//!   recompute; bumping the salt (or any keyed input) invalidates exactly
//!   the affected cells.
//! * **Instrumentation.** Each worker records into a private
//!   [`MetricsRegistry`] (job latency histogram, run counters) folded
//!   post-join via [`MetricsRegistry::merge`]; cumulative [`SweepStats`]
//!   feed the `BENCH_sweep.json` throughput trajectory.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use rfid_apps::info_collect::{run_polling, run_polling_in};
use rfid_obs::MetricsRegistry;
use rfid_protocols::{run_recovered, RecoveryPolicy, Report};
use rfid_system::{to_json_string, FaultModel, FromJson, Json, SimConfig, SimContext, ToJson};
use rfid_workloads::Scenario;

use crate::runner::ProtocolFactory;

/// Code-version salt folded into every cache key. Bump whenever simulator
/// semantics change in a way that alters reports, so stale sweep caches
/// invalidate themselves. (v2: `Counters` gained the recovery fields.)
pub const CACHE_SALT: &str = "sweep-v3";

/// Default runs per job (run-block size): fine-grained enough that a single
/// cell still fans out across cores.
const DEFAULT_RUN_BLOCK: u64 = 2;

/// One grid cell: a protocol row evaluated over a scenario for `runs`
/// Monte-Carlo repetitions.
pub struct Cell<'a> {
    /// Protocol display label (cache-key component).
    pub protocol: String,
    /// Serialized protocol configuration (cache-key component); the empty
    /// string for configs that are not serializable.
    pub config: String,
    /// Population description, carrying the cell's master seed.
    pub scenario: Scenario,
    /// Monte-Carlo repetitions; run `r` executes under
    /// `scenario.for_run(r)`.
    pub runs: u64,
    /// Thread-safe factory of fresh protocol instances.
    pub factory: &'a ProtocolFactory<'a>,
    /// Channel fault model injected into every run (cache-key component);
    /// `None` runs the paper's perfect channel.
    pub fault: Option<FaultModel>,
    /// Recovery policy wrapping every run (cache-key component); `None`
    /// runs the bare protocol, which panics on a stall.
    pub recovery: Option<RecoveryPolicy>,
}

impl<'a> Cell<'a> {
    /// A cell with an explicit label and serialized config.
    pub fn new(
        protocol: impl Into<String>,
        config: impl Into<String>,
        scenario: Scenario,
        runs: u64,
        factory: &'a ProtocolFactory<'a>,
    ) -> Self {
        Cell {
            protocol: protocol.into(),
            config: config.into(),
            scenario,
            runs,
            factory,
            fault: None,
            recovery: None,
        }
    }

    /// Injects a fault model into every run of this cell.
    pub fn with_fault(mut self, fault: FaultModel) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Wraps every run of this cell in a recovery session. Degraded runs
    /// still yield their partial report (coverage is `counters.polls /
    /// tags`, passes `counters.recovery_passes + 1`).
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }
}

/// Cumulative execution statistics of a [`SweepEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepStats {
    /// Grid cells processed.
    pub cells: u64,
    /// Jobs (run-blocks) processed, including cache hits.
    pub jobs: u64,
    /// Monte-Carlo runs covered, including cache hits.
    pub runs: u64,
    /// Jobs served from the cell cache.
    pub cache_hits: u64,
    /// Wall-clock seconds spent inside [`SweepEngine::run_cells`].
    pub elapsed_s: f64,
}

impl SweepStats {
    /// Fraction of jobs served from cache (0 when nothing ran).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs as f64
        }
    }

    /// Cell throughput (0 when nothing ran).
    pub fn cells_per_sec(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.elapsed_s
        }
    }
}

/// The deterministic parallel sweep scheduler. See the module docs for the
/// job model, seeding and cache-keying rules.
pub struct SweepEngine {
    workers: usize,
    run_block: u64,
    progress: bool,
    salt: String,
    cache: Option<SweepCache>,
    metrics: MetricsRegistry,
    stats: SweepStats,
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

impl SweepEngine {
    /// An engine with one worker per available core, the default run-block
    /// size, no cache and metrics enabled.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        SweepEngine {
            workers,
            run_block: DEFAULT_RUN_BLOCK,
            progress: false,
            salt: CACHE_SALT.to_string(),
            cache: None,
            metrics: MetricsRegistry::enabled(),
            stats: SweepStats::default(),
        }
    }

    /// Sets the worker-thread count (1 = the serial reference path).
    ///
    /// # Panics
    /// Panics on 0 workers.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the maximum runs per job. Does not affect results, only
    /// scheduling granularity and cache addressing.
    ///
    /// # Panics
    /// Panics on a 0-run block.
    pub fn with_run_block(mut self, runs: u64) -> Self {
        assert!(runs >= 1, "need at least one run per block");
        self.run_block = runs;
        self
    }

    /// Enables decile progress lines on stderr.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Attaches a persistent cell cache rooted at `dir` (created on first
    /// write; unreadable entries are ignored).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache = Some(SweepCache::open(dir.into()));
        self
    }

    /// Overrides the code-version salt in cache keys (tests use this to
    /// prove invalidation).
    pub fn with_salt(mut self, salt: impl Into<String>) -> Self {
        self.salt = salt.into();
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative statistics across every `run_cells` call so far.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// The merged sweep metrics (job-latency histogram, job/run/cache-hit
    /// counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Executes every cell and returns the per-cell reports, in cell order,
    /// with reports in run order. Output is bit-identical for any worker
    /// count, run-block size, or scheduling interleaving: per-run seeds
    /// depend only on the cell's scenario and the global run index, and all
    /// result placement is by index.
    pub fn run_cells(&mut self, cells: &[Cell<'_>]) -> Vec<Vec<Report>> {
        let t0 = Instant::now();
        let jobs = self.expand_jobs(cells);

        // Cache phase: serve what we can, queue the rest.
        let mut results: Vec<Vec<Option<Report>>> =
            cells.iter().map(|c| vec![None; c.runs as usize]).collect();
        let mut pending: Vec<&Job> = Vec::new();
        let mut hits = 0u64;
        for job in &jobs {
            match self.cache.as_ref().and_then(|c| c.get(&job.id)) {
                Some(reports) if reports.len() == job.len as usize => {
                    for (i, r) in reports.iter().enumerate() {
                        results[job.cell][(job.start + i as u64) as usize] = Some(r.clone());
                    }
                    hits += 1;
                }
                _ => pending.push(job),
            }
        }

        // Parallel phase: one atomic cursor, results placed by job index.
        let workers = self.workers.min(pending.len().max(1));
        let (computed, worker_metrics) = run_jobs(cells, &pending, workers, self.progress);
        self.metrics.merge(&worker_metrics);

        // Reduction phase, in fixed job order: persist misses, fill slots.
        let mut fresh_lines: Vec<String> = Vec::new();
        for (job, reports) in pending.iter().zip(computed) {
            if self.cache.is_some() {
                fresh_lines.push(cache_line(&job.key, &job.id, &reports));
            }
            for (i, r) in reports.into_iter().enumerate() {
                results[job.cell][(job.start + i as u64) as usize] = Some(r);
            }
        }
        if let Some(cache) = &mut self.cache {
            cache.append(&fresh_lines);
        }

        // Bookkeeping.
        let elapsed = t0.elapsed().as_secs_f64();
        self.stats.cells += cells.len() as u64;
        self.stats.jobs += jobs.len() as u64;
        self.stats.runs += cells.iter().map(|c| c.runs).sum::<u64>();
        self.stats.cache_hits += hits;
        self.stats.elapsed_s += elapsed;
        self.metrics.inc("sweep_cells", cells.len() as u64);
        self.metrics.inc("sweep_jobs", jobs.len() as u64);
        self.metrics.inc("sweep_cache_hits", hits);
        self.metrics
            .observe("sweep_batch_ms", (elapsed * 1e3) as u64);

        results
            .into_iter()
            .map(|cell| {
                cell.into_iter()
                    .map(|r| r.expect("every run filled"))
                    .collect()
            })
            .collect()
    }

    /// Appends this engine's cumulative stats as one entry of
    /// `BENCH_sweep.json` under `dir` and returns the file path. Entries
    /// accumulate across invocations (e.g. a cold `--workers 1` run
    /// followed by a warm default-width run), seeding the sweep-throughput
    /// bench trajectory with cells/sec, cache-hit-rate and worker-count
    /// scaling data.
    pub fn write_bench_entry(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("BENCH_sweep.json");
        let mut entries: Vec<Json> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|doc| {
                doc.get("entries")
                    .and_then(|e| e.as_arr().ok().map(<[Json]>::to_vec))
            })
            .unwrap_or_default();
        let s = self.stats();
        entries.push(Json::Obj(vec![
            ("workers".to_string(), (self.workers as u64).to_json()),
            ("cells".to_string(), s.cells.to_json()),
            ("jobs".to_string(), s.jobs.to_json()),
            ("runs".to_string(), s.runs.to_json()),
            ("cache_hits".to_string(), s.cache_hits.to_json()),
            ("cache_hit_rate".to_string(), s.cache_hit_rate().to_json()),
            ("elapsed_s".to_string(), s.elapsed_s.to_json()),
            ("cells_per_sec".to_string(), s.cells_per_sec().to_json()),
        ]));
        let doc = Json::Obj(vec![
            ("group".to_string(), Json::str("sweep")),
            ("entries".to_string(), Json::Arr(entries)),
        ]);
        std::fs::write(&path, doc.to_pretty_string() + "\n")?;
        Ok(path)
    }

    fn expand_jobs(&self, cells: &[Cell<'_>]) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            assert!(cell.runs >= 1, "cell {ci} has zero runs");
            let scenario_json = to_json_string(&cell.scenario);
            let fault_json = cell.fault.as_ref().map_or_else(String::new, to_json_string);
            let recovery_json = cell
                .recovery
                .as_ref()
                .map_or_else(String::new, to_json_string);
            let mut start = 0;
            while start < cell.runs {
                let len = self.run_block.min(cell.runs - start);
                let id = format!(
                    "{}|{}|{}|{}|{}|{}|{}+{}",
                    self.salt,
                    cell.protocol,
                    cell.config,
                    scenario_json,
                    fault_json,
                    recovery_json,
                    start,
                    len
                );
                let key = format!("{:016x}", fnv64(&id));
                jobs.push(Job {
                    cell: ci,
                    start,
                    len,
                    id,
                    key,
                });
                start += len;
            }
        }
        jobs
    }
}

/// Executes one Monte-Carlo run of a cell. Plain cells keep the validated
/// [`run_polling`] path bit-for-bit; faulted or recovered cells build the
/// context explicitly. A recovered run that degrades still returns its
/// partial report (the recovery counters inside carry passes and backoff).
fn execute_run(
    cell: &Cell<'_>,
    protocol: &dyn rfid_protocols::PollingProtocol,
    sc: &Scenario,
) -> Report {
    if cell.fault.is_none() && cell.recovery.is_none() {
        return run_polling(protocol, sc).report;
    }
    let mut cfg = SimConfig::paper(sc.protocol_seed());
    if let Some(fault) = &cell.fault {
        cfg = cfg.with_fault(fault.clone());
    }
    let mut ctx = SimContext::new(sc.build_population(), &cfg);
    match &cell.recovery {
        Some(policy) => run_recovered(protocol, policy, &mut ctx).report().clone(),
        None => match run_polling_in(protocol, &mut ctx) {
            Ok(outcome) => outcome.report,
            Err(e) => panic!("{e}"),
        },
    }
}

/// One schedulable unit: a run-block of a cell plus its cache identity.
struct Job {
    cell: usize,
    start: u64,
    len: u64,
    /// Full cache-key preimage (collision-proof lookup).
    id: String,
    /// Content hash of `id` (compact on-disk key).
    key: String,
}

/// Executes `pending` jobs across `workers` scoped threads. Returns the
/// computed reports in `pending` order plus the per-worker metrics merged
/// in worker order (exact bucket/counter sums, so the totals are
/// schedule-independent).
fn run_jobs(
    cells: &[Cell<'_>],
    pending: &[&Job],
    workers: usize,
    progress: bool,
) -> (Vec<Vec<Report>>, MetricsRegistry) {
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<Report>>> = (0..pending.len()).map(|_| None).collect();
    let worker_results: Vec<(Vec<(usize, Vec<Report>)>, MetricsRegistry)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        let mut metrics = MetricsRegistry::enabled();
                        loop {
                            let j = cursor.fetch_add(1, Ordering::Relaxed);
                            if j >= pending.len() {
                                break;
                            }
                            let job = pending[j];
                            let cell = &cells[job.cell];
                            let jt = Instant::now();
                            let mut reports = Vec::with_capacity(job.len as usize);
                            for r in job.start..job.start + job.len {
                                let sc = cell.scenario.for_run(r);
                                let protocol = (cell.factory)();
                                reports.push(execute_run(cell, protocol.as_ref(), &sc));
                            }
                            metrics.observe("sweep_job_us", jt.elapsed().as_micros() as u64);
                            metrics.inc("sweep_runs", job.len);
                            local.push((j, reports));
                            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                            if progress
                                && finished * 10 / pending.len()
                                    != (finished - 1) * 10 / pending.len()
                            {
                                eprintln!("sweep: {finished}/{} jobs", pending.len());
                            }
                        }
                        (local, metrics)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
    let mut merged = MetricsRegistry::enabled();
    for (local, metrics) in worker_results {
        merged.merge(&metrics);
        for (j, reports) in local {
            slots[j] = Some(reports);
        }
    }
    (
        slots
            .into_iter()
            .map(|s| s.expect("every pending job computed"))
            .collect(),
        merged,
    )
}

/// The persistent content-addressed cell cache: one JSONL file of
/// `{key, id, reports}` lines. Lookups compare the full `id` preimage, so
/// hash collisions cannot alias cells.
struct SweepCache {
    file: PathBuf,
    entries: HashMap<String, Vec<Report>>,
}

impl SweepCache {
    fn open(dir: PathBuf) -> SweepCache {
        let file = dir.join("cells.jsonl");
        let mut entries = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&file) {
            for line in text.lines() {
                let Ok(doc) = Json::parse(line) else { continue };
                let (Some(id), Some(reports)) = (
                    doc.get("id")
                        .and_then(|v| v.as_str().ok().map(str::to_string)),
                    doc.get("reports")
                        .and_then(|v| Vec::<Report>::from_json(v).ok()),
                ) else {
                    continue;
                };
                entries.insert(id, reports);
            }
        }
        SweepCache { file, entries }
    }

    fn get(&self, id: &str) -> Option<&Vec<Report>> {
        self.entries.get(id)
    }

    fn append(&mut self, lines: &[String]) {
        if lines.is_empty() {
            return;
        }
        if let Some(dir) = self.file.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.file)
        {
            Ok(mut f) => {
                for line in lines {
                    if writeln!(f, "{line}").is_err() {
                        break;
                    }
                }
            }
            Err(e) => eprintln!("sweep cache: could not open {}: {e}", self.file.display()),
        }
        // Keep the in-memory view warm for later batches in this process.
        for line in lines {
            if let Ok(doc) = Json::parse(line) {
                if let (Ok(id), Some(reports)) = (
                    doc.field::<String>("id"),
                    doc.get("reports")
                        .and_then(|v| Vec::<Report>::from_json(v).ok()),
                ) {
                    self.entries.insert(id, reports);
                }
            }
        }
    }
}

fn cache_line(key: &str, id: &str, reports: &[Report]) -> String {
    Json::Obj(vec![
        ("key".to_string(), Json::str(key)),
        ("id".to_string(), Json::str(id)),
        (
            "reports".to_string(),
            Json::Arr(reports.iter().map(ToJson::to_json).collect()),
        ),
    ])
    .to_string()
}

/// FNV-1a over the cache-key preimage: stable across runs and platforms.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_protocols::TppConfig;

    fn tpp_factory() -> Box<dyn Fn() -> Box<dyn rfid_protocols::PollingProtocol> + Sync> {
        Box::new(|| Box::new(TppConfig::default().into_protocol()))
    }

    #[test]
    fn jobs_cover_every_run_exactly_once() {
        let factory = tpp_factory();
        let cell = Cell::new(
            "TPP",
            "",
            Scenario::uniform(10, 1).with_seed(1),
            7,
            &*factory,
        );
        let engine = SweepEngine::new().with_run_block(3);
        let jobs = engine.expand_jobs(std::slice::from_ref(&cell));
        let covered: Vec<(u64, u64)> = jobs.iter().map(|j| (j.start, j.len)).collect();
        assert_eq!(covered, [(0, 3), (3, 3), (6, 1)]);
    }

    #[test]
    fn cache_ids_differ_by_salt_config_scenario_and_block() {
        let factory = tpp_factory();
        let base = |salt: &str, config: &str, seed: u64| {
            let cell = Cell::new(
                "TPP",
                config,
                Scenario::uniform(10, 1).with_seed(seed),
                2,
                &*factory,
            );
            SweepEngine::new()
                .with_salt(salt)
                .expand_jobs(std::slice::from_ref(&cell))[0]
                .id
                .clone()
        };
        let reference = base("v1", "cfg", 1);
        assert_eq!(reference, base("v1", "cfg", 1), "ids are stable");
        assert_ne!(reference, base("v2", "cfg", 1), "salt invalidates");
        assert_ne!(reference, base("v1", "cfg2", 1), "config invalidates");
        assert_ne!(reference, base("v1", "cfg", 2), "seed invalidates");
    }

    #[test]
    fn fault_and_recovery_key_the_cache_and_stay_deterministic() {
        use rfid_system::FaultModel;
        let factory = tpp_factory();
        let id_of = |cell: &Cell<'_>| {
            SweepEngine::new().expand_jobs(std::slice::from_ref(cell))[0]
                .id
                .clone()
        };
        let plain = Cell::new(
            "TPP",
            "",
            Scenario::uniform(10, 1).with_seed(1),
            2,
            &*factory,
        );
        let faulted = Cell::new(
            "TPP",
            "",
            Scenario::uniform(10, 1).with_seed(1),
            2,
            &*factory,
        )
        .with_fault(FaultModel::perfect().with_downlink_loss(0.2));
        let recovered = Cell::new(
            "TPP",
            "",
            Scenario::uniform(10, 1).with_seed(1),
            2,
            &*factory,
        )
        .with_fault(FaultModel::perfect().with_downlink_loss(0.2))
        .with_recovery(RecoveryPolicy::unbounded());
        assert_ne!(id_of(&plain), id_of(&faulted), "fault keys the cache");
        assert_ne!(id_of(&faulted), id_of(&recovered), "recovery keys it too");

        // A recovered lossy cell completes and is schedule-independent.
        let run = |workers: usize| {
            let cell = Cell::new(
                "TPP",
                "",
                Scenario::uniform(120, 1).with_seed(5),
                4,
                &*factory,
            )
            .with_fault(FaultModel::perfect().with_downlink_loss(0.3))
            .with_recovery(RecoveryPolicy::unbounded());
            let mut engine = SweepEngine::new().with_workers(workers).with_run_block(1);
            engine.run_cells(std::slice::from_ref(&cell))
        };
        let serial = run(1);
        let parallel = run(4);
        for (a, b) in serial[0].iter().zip(&parallel[0]) {
            assert_eq!(a.counters, b.counters, "parallel == serial bit-for-bit");
            assert_eq!(a.counters.polls as usize, a.tags, "loss 0.3 completes");
        }
    }

    #[test]
    fn stats_accumulate_and_rates_are_sane() {
        let factory = tpp_factory();
        let cell = Cell::new(
            "TPP",
            "",
            Scenario::uniform(20, 1).with_seed(4),
            3,
            &*factory,
        );
        let mut engine = SweepEngine::new().with_workers(2).with_run_block(1);
        let out = engine.run_cells(std::slice::from_ref(&cell));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
        let s = engine.stats();
        assert_eq!((s.cells, s.jobs, s.runs, s.cache_hits), (1, 3, 3, 0));
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert!(s.cells_per_sec() > 0.0);
        assert_eq!(engine.metrics().counter("sweep_runs"), 3);
        assert_eq!(engine.metrics().counter("sweep_jobs"), 3);
        assert_eq!(
            engine.metrics().histogram("sweep_job_us").unwrap().count(),
            3
        );
    }
}
