//! Summary statistics over Monte-Carlo runs.

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for one sample).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample size.
    pub count: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "empty sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Summary {
            mean,
            std: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            count: samples.len(),
        }
    }

    /// The identity element of [`Summary::merge`]: an empty sample.
    pub fn empty() -> Summary {
        Summary {
            mean: 0.0,
            std: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Combines two disjoint sub-sample summaries into the summary of their
    /// union (Chan et al.'s parallel mean/variance update).
    ///
    /// Merge laws: `count`, `min` and `max` combine exactly; `mean` and
    /// `std` are commutative bit-exactly (both sides evaluate the same
    /// floating-point expressions) and associative up to rounding, with
    /// [`Summary::empty`] as the identity. The sweep engine therefore folds
    /// partial summaries in a fixed (cell-index) order whenever bit-identical
    /// output across schedules is required.
    #[must_use]
    pub fn merge(self, other: Summary) -> Summary {
        if self.count == 0 {
            return other;
        }
        if other.count == 0 {
            return self;
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        let mean = (self.mean * na + other.mean * nb) / n;
        // M2 = Σ(x − mean)² = var·(n − 1); Chan's pairwise update.
        let m2_a = self.std * self.std * (na - 1.0);
        let m2_b = other.std * other.std * (nb - 1.0);
        let delta = other.mean - self.mean;
        let m2 = m2_a + m2_b + delta * delta * na * nb / n;
        let std = if self.count + other.count > 1 {
            (m2 / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        Summary {
            mean,
            std,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            count: self.count + other.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn single_sample_has_zero_std() {
        assert_eq!(Summary::of(&[7.0]).std, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        Summary::of(&[]);
    }

    #[test]
    fn merge_of_disjoint_blocks_matches_whole_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0, -2.5, 7.0];
        let whole = Summary::of(&xs);
        let merged = Summary::of(&xs[..3]).merge(Summary::of(&xs[3..]));
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        assert!((merged.mean - whole.mean).abs() < 1e-12);
        assert!((merged.std - whole.std).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative_bit_exactly_with_empty_identity() {
        let a = Summary::of(&[1.5, 2.5, 9.0]);
        let b = Summary::of(&[4.0, 4.5]);
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(Summary::empty()), a);
        assert_eq!(Summary::empty().merge(a), a);
    }

    #[test]
    fn merge_of_single_samples_matches_of() {
        let merged = Summary::of(&[3.0]).merge(Summary::of(&[5.0]));
        let whole = Summary::of(&[3.0, 5.0]);
        assert!((merged.std - whole.std).abs() < 1e-12);
        assert_eq!(merged.mean, whole.mean);
        assert_eq!(merged.count, 2);
    }
}
