//! Summary statistics over Monte-Carlo runs.

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for one sample).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample size.
    pub count: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "empty sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Summary {
            mean,
            std: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            count: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn single_sample_has_zero_std() {
        assert_eq!(Summary::of(&[7.0]).std, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        Summary::of(&[]);
    }
}
