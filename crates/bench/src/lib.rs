//! # rfid-bench — experiment harness shared by `repro` and the micro-benches.
//!
//! Provides the parallel Monte-Carlo runner (std scoped threads, one
//! deterministic seed per run fanned out from a master seed), summary
//! statistics, a dependency-free wall-clock micro-bench harness, and the
//! paper's anchor values for side-by-side reporting. Everything here builds
//! offline against the standard library alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchors;
pub mod harness;
pub mod runner;
pub mod stats;

pub use harness::{Bench, Measurement};
pub use runner::{montecarlo, ProtocolFactory};
pub use stats::Summary;
