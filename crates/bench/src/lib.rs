//! # rfid-bench — experiment harness shared by `repro` and the Criterion
//! benches.
//!
//! Provides the parallel Monte-Carlo runner (crossbeam-scoped threads, one
//! deterministic seed per run fanned out from a master seed), summary
//! statistics, and the paper's anchor values for side-by-side reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchors;
pub mod runner;
pub mod stats;

pub use runner::{montecarlo, ProtocolFactory};
pub use stats::Summary;
