//! # rfid-bench — experiment harness shared by `repro` and the micro-benches.
//!
//! Provides the deterministic parallel sweep engine (grid cells scheduled
//! work-stealing-style over std scoped threads, per-run seeds fanned out
//! from each cell's master seed, persistent content-addressed cell cache),
//! the Monte-Carlo runner built on it, summary statistics, a
//! dependency-free wall-clock micro-bench harness, the `repro` CLI parser,
//! and the paper's anchor values for side-by-side reporting. Everything
//! here builds offline against the standard library alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchors;
pub mod cli;
pub mod harness;
pub mod runner;
pub mod stats;
pub mod sweep;

pub use harness::{find_target_dir, fnv64, Bench, Measurement};
pub use runner::{montecarlo, ProtocolFactory};
pub use stats::Summary;
pub use sweep::{Cell, SweepEngine, SweepStats, CACHE_SALT};
