//! `repro` — regenerates every table and figure of *Fast RFID Polling
//! Protocols* (ICPP 2016).
//!
//! ```text
//! repro <experiment> [--runs N] [--max-n N]
//!
//! experiments:
//!   fig1    execution time vs polling-vector length (analytic)
//!   fig3    HPP average vector length vs n            (Eq. 4)
//!   fig4    optimal EHPP subset size vs l_c           (Theorem 1)
//!   fig5    EHPP vector length vs n for l_c ∈ {100, 200, 400}
//!   fig8    singleton probability μ(λ)                (Eq. 12/13)
//!   fig9    TPP analytic vector length vs n           (Eqs. 6/8/11/15)
//!   fig10   simulated vector lengths: HPP / EHPP / TPP
//!   table1  execution time, l = 1  bit   (CPP/HPP/EHPP/MIC/TPP/LB)
//!   table2  execution time, l = 16 bits
//!   table3  execution time, l = 32 bits
//!   ablations  design-choice ablations (TPP h-rule, EHPP subset, MIC k/α)
//!   all     everything above
//! ```
//!
//! `--runs` (default 20) controls Monte-Carlo repetitions for the simulated
//! experiments; `--max-n` (default 100000) caps the population sweep.
//! Paper-reported values are printed beside measurements where the text
//! quotes them.

use rfid_analysis as analysis;
use rfid_baselines::{CppConfig, EcppConfig, LowerBound, MicConfig};
use rfid_bench::anchors;
use rfid_bench::{montecarlo, Summary};
use rfid_c1g2::LinkParams;
use rfid_protocols::{EhppConfig, HppConfig, IndexRule, PollingProtocol, TppConfig};
use rfid_workloads::{IdDistribution, Scenario};

struct Options {
    runs: u64,
    max_n: u64,
}

/// A table row: label plus a thread-safe factory of fresh protocol
/// instances.
type ProtocolRow = (
    &'static str,
    Box<dyn Fn() -> Box<dyn PollingProtocol> + Sync>,
);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut opts = Options {
        runs: 20,
        max_n: 100_000,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                opts.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs a number")
            }
            "--max-n" => {
                opts.max_n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-n needs a number")
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    match experiment.as_str() {
        "fig1" => fig1(),
        "fig3" => fig3(&opts),
        "fig4" => fig4(),
        "fig5" => fig5(&opts),
        "fig8" => fig8(),
        "fig9" => fig9(&opts),
        "fig10" => fig10(&opts),
        "table1" => table(&opts, 1),
        "table2" => table(&opts, 16),
        "table3" => table(&opts, 32),
        "ablations" => ablations(&opts),
        "energy" => energy(&opts),
        "all" => {
            fig1();
            fig3(&opts);
            fig4();
            fig5(&opts);
            fig8();
            fig9(&opts);
            fig10(&opts);
            table(&opts, 1);
            table(&opts, 16);
            table(&opts, 32);
            ablations(&opts);
            energy(&opts);
        }
        other => {
            eprintln!("unknown experiment {other}; see the module docs");
            std::process::exit(2);
        }
    }
}

fn sweep_ns(max_n: u64) -> Vec<u64> {
    [1_000u64, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect()
}

// ---------------------------------------------------------------- figures

fn fig1() {
    println!("\n== Fig. 1 — execution time vs polling-vector length (l = 1) ==");
    println!("{:>6} {:>12}", "w bits", "time (ms)");
    for (w, ms) in analysis::timing::fig1_series(&LinkParams::paper(), 100) {
        if w % 10 == 0 {
            println!("{w:>6} {ms:>12.4}");
        }
    }
    println!("(linear, slope 0.03745 ms/bit — matches the paper's Fig. 1)");
}

fn fig3(opts: &Options) {
    println!("\n== Fig. 3 — HPP average polling-vector length w(n), Eq. (4) ==");
    println!("{:>8} {:>10} {:>10}", "n", "w (bits)", "ceil log2");
    for (n, w) in analysis::hpp::fig3_series(&sweep_ns(opts.max_n)) {
        println!("{n:>8} {w:>10.2} {:>10}", analysis::hpp::upper_bound(n));
    }
    println!("(paper anchors: w ≈ 10 at n = 10^3, w ≈ 16 at n = 10^5)");
}

fn fig4() {
    println!("\n== Fig. 4 — optimal EHPP subset size vs circle-command length (Theorem 1) ==");
    println!(
        "{:>6} {:>12} {:>10} {:>12}",
        "l_c", "lower bound", "optimal", "upper bound"
    );
    let lcs: Vec<u64> = (50..=500).step_by(50).collect();
    for (lc, lo, opt, hi) in analysis::ehpp::fig4_series(&lcs) {
        println!("{lc:>6} {lo:>12.1} {opt:>10} {hi:>12.1}");
    }
    println!("(optimal n* sandwiched in [l_c·ln2, e·l_c·ln2], growing with l_c)");
}

fn fig5(opts: &Options) {
    println!("\n== Fig. 5 — EHPP average vector length vs n (Sec. III-D) ==");
    let ns = sweep_ns(opts.max_n);
    print!("{:>8}", "n");
    for lc in [100u64, 200, 400] {
        print!(" {:>12}", format!("l_c={lc}"));
    }
    println!();
    for &n in &ns {
        print!("{n:>8}");
        for lc in [100u64, 200, 400] {
            print!(" {:>12.2}", analysis::ehpp::average_vector_length(n, lc, 0));
        }
        println!();
    }
    println!("(paper anchor: ≈ 7.94 bits at l_c = 200, n = 10^5; flat in n)");
}

fn fig8() {
    println!("\n== Fig. 8 — singleton probability mu(lambda) = lambda*e^(-lambda) ==");
    println!("{:>8} {:>10}", "lambda", "mu");
    for (l, m) in analysis::mu::mu_series(4.0, 16) {
        println!("{l:>8.2} {m:>10.4}");
    }
    let (lo, hi) = analysis::mu::optimal_load_interval();
    println!(
        "(peak 1/e ≈ {:.4} at λ = 1; μ(ln2) = μ(2ln2) = {:.4}; optimal λ ∈ [{lo:.3}, {hi:.3}))",
        (-1f64).exp(),
        analysis::mu::min_max_mu()
    );
}

fn fig9(opts: &Options) {
    println!("\n== Fig. 9 — TPP analytic average vector length, Eqs. (6)(8)(11)(15) ==");
    println!("{:>8} {:>10}", "n", "w (bits)");
    for (n, w) in analysis::tpp::fig9_series(&sweep_ns(opts.max_n)) {
        println!("{n:>8} {w:>10.3}");
    }
    println!(
        "(paper: stable ≈ {}; global Eq. (16) bound {:.4})",
        anchors::FIG9_TPP_ANALYTIC,
        analysis::tpp::global_bound()
    );
}

fn fig10(opts: &Options) {
    println!(
        "\n== Fig. 10 — simulated average polling-vector length ({} runs) ==",
        opts.runs
    );
    println!("{:>8} {:>14} {:>14} {:>14}", "n", "HPP", "EHPP", "TPP");
    let ns: Vec<u64> = [10_000u64, 20_000, 40_000, 60_000, 80_000, 100_000]
        .into_iter()
        .filter(|&n| n <= opts.max_n)
        .collect();
    for &n in &ns {
        let scenario = Scenario::uniform(n as usize, 1).with_seed(n);
        let hpp = vector_summary(&scenario, opts.runs, false, &|| {
            Box::new(HppConfig::default().into_protocol())
        });
        let ehpp = vector_summary(&scenario, opts.runs, true, &|| {
            Box::new(EhppConfig::default().into_protocol())
        });
        let tpp = vector_summary(&scenario, opts.runs, false, &|| {
            Box::new(TppConfig::default().into_protocol())
        });
        println!(
            "{n:>8} {:>9.2}±{:<4.2} {:>9.2}±{:<4.2} {:>9.2}±{:<4.2}",
            hpp.mean, hpp.std, ehpp.mean, ehpp.std, tpp.mean, tpp.std
        );
    }
    println!(
        "(paper anchors: HPP {}→{} bits, EHPP ≈ {}, TPP ≈ {}; EHPP/TPP flat in n)",
        anchors::FIG10_HPP_AT_1K,
        anchors::FIG10_HPP_AT_100K,
        anchors::FIG10_EHPP,
        anchors::FIG10_TPP
    );
}

fn vector_summary(
    scenario: &Scenario,
    runs: u64,
    with_overhead: bool,
    factory: &rfid_bench::ProtocolFactory<'_>,
) -> Summary {
    let reports = montecarlo(scenario, runs, factory);
    let ws: Vec<f64> = reports
        .iter()
        .map(|r| {
            if with_overhead {
                r.mean_vector_bits_with_overhead()
            } else {
                r.mean_vector_bits()
            }
        })
        .collect();
    Summary::of(&ws)
}

// ----------------------------------------------------------------- tables

fn table(opts: &Options, l: usize) {
    let which = match l {
        1 => "I",
        16 => "II",
        _ => "III",
    };
    println!(
        "\n== Table {which} — execution time (s) to collect {l}-bit information ({} runs) ==",
        opts.runs
    );
    let ns: Vec<u64> = anchors::TABLE_NS
        .into_iter()
        .filter(|&n| n <= opts.max_n)
        .collect();
    print!("{:<12}", "protocol");
    for n in &ns {
        print!(" {:>16}", format!("n={n}"));
    }
    println!();

    let rows: Vec<ProtocolRow> = vec![
        (
            "CPP",
            Box::new(|| Box::new(CppConfig::default().into_protocol())),
        ),
        (
            "HPP",
            Box::new(|| Box::new(HppConfig::default().into_protocol())),
        ),
        (
            "EHPP",
            Box::new(|| Box::new(EhppConfig::default().into_protocol())),
        ),
        (
            "MIC",
            Box::new(|| Box::new(MicConfig::default().into_protocol())),
        ),
        (
            "TPP",
            Box::new(|| Box::new(TppConfig::default().into_protocol())),
        ),
        ("LowerBound", Box::new(|| Box::new(LowerBound))),
    ];

    let mut measured: Vec<Vec<f64>> = Vec::new();
    for (label, factory) in &rows {
        print!("{label:<12}");
        let mut row = Vec::new();
        for &n in &ns {
            let scenario = Scenario::uniform(n as usize, l).with_seed(n + l as u64);
            // CPP and LowerBound are deterministic in time; one run suffices.
            let runs = if *label == "CPP" || *label == "LowerBound" {
                1
            } else {
                opts.runs
            };
            let reports = montecarlo(&scenario, runs, factory.as_ref());
            let secs: Vec<f64> = reports.iter().map(|r| r.total_time.as_secs()).collect();
            let s = Summary::of(&secs);
            row.push(s.mean);
            print!(" {:>16.3}", s.mean);
        }
        measured.push(row);
        println!();
    }

    // Paper anchors where the text quotes them.
    match l {
        1 => {
            println!(
                "paper (n = 10^4): CPP 37.70, HPP 8.12, EHPP 6.63, MIC 5.15, TPP 4.39, LB 3.25"
            );
            if let Some(col) = ns.iter().position(|&n| n == 10_000) {
                for (row, anchor) in measured.iter().zip(anchors::TABLE1.iter()) {
                    if let Some(p) = anchor.seconds[2] {
                        let dev = (row[col] - p) / p * 100.0;
                        println!(
                            "  {:<12} measured {:>7.2} vs paper {:>6.2}  ({dev:+.1} %)",
                            anchor.protocol, row[col], p
                        );
                    }
                }
            }
        }
        16 => {
            println!("paper (n = 10^4): TPP = 85.7 % of MIC, 78.3 % of EHPP, 68.6 % of HPP, 19.6 % of CPP");
            if let Some(col) = ns.iter().position(|&n| n == 10_000) {
                let tpp = measured[4][col];
                for (name, ratio) in anchors::TABLE2_TPP_RATIOS {
                    let idx = rows.iter().position(|(lbl, _)| *lbl == name).expect("row");
                    println!(
                        "  TPP/{name:<5} measured {:>6.3} vs paper {ratio:.3}",
                        tpp / measured[idx][col]
                    );
                }
            }
        }
        _ => {
            println!("paper (n = 10^4): xLB — TPP 1.10, MIC 1.28, EHPP 1.31, HPP 1.45, CPP 4.14");
            if let Some(col) = ns.iter().position(|&n| n == 10_000) {
                let lb = measured[5][col];
                for (name, ratio) in anchors::TABLE3_LB_RATIOS {
                    let idx = rows.iter().position(|(lbl, _)| *lbl == name).expect("row");
                    println!(
                        "  {name:<5}/LB measured {:>6.3} vs paper {ratio:.2}",
                        measured[idx][col] / lb
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- energy

/// Extension experiment (after Qiao et al., MobiHoc'11): tag-side energy
/// per protocol — tags listen until read, so shorter polling vectors save
/// energy twice.
fn energy(opts: &Options) {
    use rfid_analysis::energy::EnergyParams;
    let n = 10_000.min(opts.max_n) as usize;
    let runs = opts.runs.max(5);
    let scenario = Scenario::uniform(n, 1).with_seed(123);
    let link = LinkParams::paper();
    let params = EnergyParams::semi_passive();
    println!("\n== Energy extension — per-tag energy, semi-passive tags (n = {n}, {runs} runs) ==");
    println!(
        "{:<12} {:>14} {:>12} {:>12}",
        "protocol", "per tag (µJ)", "rx (mJ)", "tx (mJ)"
    );
    let rows: Vec<ProtocolRow> = vec![
        (
            "CPP",
            Box::new(|| Box::new(CppConfig::default().into_protocol())),
        ),
        (
            "HPP",
            Box::new(|| Box::new(HppConfig::default().into_protocol())),
        ),
        (
            "EHPP",
            Box::new(|| Box::new(EhppConfig::default().into_protocol())),
        ),
        (
            "MIC",
            Box::new(|| Box::new(MicConfig::default().into_protocol())),
        ),
        (
            "TPP",
            Box::new(|| Box::new(TppConfig::default().into_protocol())),
        ),
    ];
    for (label, factory) in &rows {
        let reports = montecarlo(&scenario, runs, factory.as_ref());
        let per_tag: Vec<f64> = reports
            .iter()
            .map(|r| r.tag_energy(&params, &link).per_tag_uj())
            .collect();
        let rx: Vec<f64> = reports
            .iter()
            .map(|r| r.tag_energy(&params, &link).rx_mj)
            .collect();
        let tx: Vec<f64> = reports
            .iter()
            .map(|r| r.tag_energy(&params, &link).tx_mj)
            .collect();
        println!(
            "{label:<12} {:>14.2} {:>12.2} {:>12.3}",
            Summary::of(&per_tag).mean,
            Summary::of(&rx).mean,
            Summary::of(&tx).mean
        );
    }
    println!("(listen energy dominates; TPP's short vectors and early sleeps win)");
}

// -------------------------------------------------------------- ablations

fn ablations(opts: &Options) {
    let n = 10_000.min(opts.max_n) as usize;
    let runs = opts.runs.max(5);
    let scenario = Scenario::uniform(n, 1).with_seed(99);
    println!("\n== Ablations (n = {n}, l = 1, {runs} runs) ==");

    // 1. TPP index-length rule: Eq. (15) vs HPP's rule.
    let opt = vector_summary(&scenario, runs, false, &|| {
        Box::new(TppConfig::default().into_protocol())
    });
    let hpp_rule = vector_summary(&scenario, runs, false, &|| {
        Box::new(
            TppConfig {
                index_rule: IndexRule::HppRule,
                ..TppConfig::default()
            }
            .into_protocol(),
        )
    });
    println!(
        "TPP h-rule:      Eq.(15) {:.3} bits  vs  HPP-rule {:.3} bits",
        opt.mean, hpp_rule.mean
    );

    // 2. EHPP subset size: Theorem-1 optimum vs halved/doubled.
    let n_star = EhppConfig::default().effective_subset_size();
    for (label, size) in [
        ("n*/2", n_star / 2),
        ("n* (Thm 1)", n_star),
        ("2n*", n_star * 2),
    ] {
        let s = vector_summary(&scenario, runs, true, &|| {
            Box::new(
                EhppConfig {
                    subset_size: Some(size),
                    ..EhppConfig::default()
                }
                .into_protocol(),
            )
        });
        println!(
            "EHPP subset {label:<11} ({size:>4} tags): {:.3} bits incl. overhead",
            s.mean
        );
    }

    // 3. MIC hash count.
    for k in [1usize, 2, 4, 7] {
        let reports = montecarlo(&scenario, runs, &|| {
            Box::new(
                MicConfig {
                    k,
                    ..MicConfig::default()
                }
                .into_protocol(),
            )
        });
        let secs: Vec<f64> = reports.iter().map(|r| r.total_time.as_secs()).collect();
        let waste: Vec<f64> = reports
            .iter()
            .map(|r| {
                r.counters.empty_slots as f64 / (r.counters.empty_slots + r.counters.polls) as f64
            })
            .collect();
        println!(
            "MIC k={k}:  {:.3} s, wasted slots {:.1} %",
            Summary::of(&secs).mean,
            Summary::of(&waste).mean * 100.0
        );
    }

    // 4. Tree encoding vs flat singleton broadcast at the same h (isolates
    //    the polling tree itself): TPP with HPP's h vs HPP.
    let flat = vector_summary(&scenario, runs, false, &|| {
        Box::new(HppConfig::default().into_protocol())
    });
    println!(
        "tree encoding:   flat HPP {:.3} bits  vs  tree @ same h {:.3} bits",
        flat.mean, hpp_rule.mean
    );

    // 5. ID-distribution sensitivity: the hashed protocols are
    //    distribution-free; eCPP is not.
    for (label, dist) in [
        ("uniform", IdDistribution::UniformRandom),
        ("clustered", IdDistribution::Clustered { categories: 10 }),
    ] {
        let sc = scenario.clone().with_ids(dist);
        let tpp = vector_summary(&sc, runs, false, &|| {
            Box::new(TppConfig::default().into_protocol())
        });
        let reports = montecarlo(&sc, runs, &|| {
            Box::new(EcppConfig::default().into_protocol())
        });
        let ecpp: Vec<f64> = reports.iter().map(|r| r.mean_vector_bits()).collect();
        println!(
            "IDs {label:<10} TPP {:.3} bits, eCPP {:.1} bits",
            tpp.mean,
            Summary::of(&ecpp).mean
        );
    }
}
