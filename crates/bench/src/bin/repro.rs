//! `repro` — regenerates every table and figure of *Fast RFID Polling
//! Protocols* (ICPP 2016). Run `repro --help` (or see [`rfid_bench::cli`])
//! for the experiment list and flags.
//!
//! Simulated experiments (Fig. 10, Tables I–III, ablations, energy) walk
//! the evaluation grid through the deterministic parallel sweep engine
//! ([`rfid_bench::sweep`]): every cell is scheduled across cores, results
//! are bit-identical to the serial `--workers 1` path, and cell results
//! persist under `target/sweep-cache/` so a re-run after an unrelated edit
//! skips unchanged cells. Each invocation appends its throughput stats
//! (cells/sec, cache hit rate, worker count) to `target/BENCH_sweep.json`.
//!
//! `--runs` (default 20) controls Monte-Carlo repetitions for the simulated
//! experiments; `--max-n` (default 100000) caps the population sweep.
//! Paper-reported values are printed beside measurements where the text
//! quotes them.

use std::path::PathBuf;

use rfid_analysis as analysis;
use rfid_baselines::{CppConfig, EcppConfig, LowerBound, MicConfig};
use rfid_bench::anchors;
use rfid_bench::cli::{self, ReproOptions};
use rfid_bench::{Cell, Summary, SweepEngine};
use rfid_c1g2::LinkParams;
use rfid_protocols::{EhppConfig, HppConfig, IndexRule, PollingProtocol, Report, TppConfig};
use rfid_system::to_json_string;
use rfid_workloads::{IdDistribution, Scenario};

/// A grid row: display label, serialized config (cache-key component) and a
/// thread-safe factory of fresh protocol instances.
struct Row {
    label: &'static str,
    config: String,
    factory: Box<dyn Fn() -> Box<dyn PollingProtocol> + Sync>,
}

impl Row {
    fn new(
        label: &'static str,
        config: String,
        factory: impl Fn() -> Box<dyn PollingProtocol> + Sync + 'static,
    ) -> Row {
        Row {
            label,
            config,
            factory: Box::new(factory),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", cli::usage());
        return;
    }
    let opts = match cli::parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{}", cli::usage());
            std::process::exit(2);
        }
    };

    let mut engine = build_engine(&opts);
    match opts.experiment.as_str() {
        "fig1" => fig1(),
        "fig3" => fig3(&opts),
        "fig4" => fig4(),
        "fig5" => fig5(&opts),
        "fig8" => fig8(),
        "fig9" => fig9(&opts),
        "fig10" => fig10(&mut engine, &opts),
        "table1" => table(&mut engine, &opts, 1),
        "table2" => table(&mut engine, &opts, 16),
        "table3" => table(&mut engine, &opts, 32),
        "ablations" => ablations(&mut engine, &opts),
        "energy" => energy(&mut engine, &opts),
        "recovery" => recovery(&mut engine, &opts),
        "session" => session(&opts),
        "all" => {
            fig1();
            fig3(&opts);
            fig4();
            fig5(&opts);
            fig8();
            fig9(&opts);
            fig10(&mut engine, &opts);
            table(&mut engine, &opts, 1);
            table(&mut engine, &opts, 16);
            table(&mut engine, &opts, 32);
            ablations(&mut engine, &opts);
            energy(&mut engine, &opts);
            recovery(&mut engine, &opts);
            session(&opts);
        }
        other => unreachable!("cli::parse_args validated `{other}`"),
    }
    report_sweep_stats(&engine);
}

/// Builds the sweep engine from the CLI flags: worker width, run-block
/// size, and the persistent cell cache (default `target/sweep-cache/`).
fn build_engine(opts: &ReproOptions) -> SweepEngine {
    let mut engine = SweepEngine::new().with_progress(true);
    if let Some(workers) = opts.workers {
        engine = engine.with_workers(workers);
    }
    if let Some(block) = opts.run_block {
        engine = engine.with_run_block(block);
    }
    if opts.cache {
        let dir = opts.cache_dir.clone().unwrap_or_else(|| {
            rfid_bench::find_target_dir()
                .unwrap_or_else(|| PathBuf::from("target"))
                .join("sweep-cache")
        });
        engine = engine.with_cache_dir(dir);
    }
    engine
}

/// Prints the sweep throughput line and appends the `BENCH_sweep.json`
/// entry (the sweep bench trajectory) when any cell actually ran.
fn report_sweep_stats(engine: &SweepEngine) {
    let stats = engine.stats();
    if stats.jobs == 0 {
        return;
    }
    eprintln!(
        "sweep: {} cells / {} jobs ({} cached, {:.0} % hit rate) on {} workers in {:.2} s ({:.1} cells/s)",
        stats.cells,
        stats.jobs,
        stats.cache_hits,
        stats.cache_hit_rate() * 100.0,
        engine.workers(),
        stats.elapsed_s,
        stats.cells_per_sec(),
    );
    if let Some(dir) = rfid_bench::find_target_dir() {
        match engine.write_bench_entry(&dir) {
            Ok(path) => eprintln!("sweep report: {}", path.display()),
            Err(e) => eprintln!("could not write BENCH_sweep.json: {e}"),
        }
    }
}

fn sweep_ns(max_n: u64) -> Vec<u64> {
    [1_000u64, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect()
}

fn summary_of(reports: &[Report], metric: impl Fn(&Report) -> f64) -> Summary {
    let samples: Vec<f64> = reports.iter().map(metric).collect();
    Summary::of(&samples)
}

// ---------------------------------------------------------------- figures

fn fig1() {
    println!("\n== Fig. 1 — execution time vs polling-vector length (l = 1) ==");
    println!("{:>6} {:>12}", "w bits", "time (ms)");
    for (w, ms) in analysis::timing::fig1_series(&LinkParams::paper(), 100) {
        if w % 10 == 0 {
            println!("{w:>6} {ms:>12.4}");
        }
    }
    println!("(linear, slope 0.03745 ms/bit — matches the paper's Fig. 1)");
}

fn fig3(opts: &ReproOptions) {
    println!("\n== Fig. 3 — HPP average polling-vector length w(n), Eq. (4) ==");
    println!("{:>8} {:>10} {:>10}", "n", "w (bits)", "ceil log2");
    for (n, w) in analysis::hpp::fig3_series(&sweep_ns(opts.max_n)) {
        println!("{n:>8} {w:>10.2} {:>10}", analysis::hpp::upper_bound(n));
    }
    println!("(paper anchors: w ≈ 10 at n = 10^3, w ≈ 16 at n = 10^5)");
}

fn fig4() {
    println!("\n== Fig. 4 — optimal EHPP subset size vs circle-command length (Theorem 1) ==");
    println!(
        "{:>6} {:>12} {:>10} {:>12}",
        "l_c", "lower bound", "optimal", "upper bound"
    );
    let lcs: Vec<u64> = (50..=500).step_by(50).collect();
    for (lc, lo, opt, hi) in analysis::ehpp::fig4_series(&lcs) {
        println!("{lc:>6} {lo:>12.1} {opt:>10} {hi:>12.1}");
    }
    println!("(optimal n* sandwiched in [l_c·ln2, e·l_c·ln2], growing with l_c)");
}

fn fig5(opts: &ReproOptions) {
    println!("\n== Fig. 5 — EHPP average vector length vs n (Sec. III-D) ==");
    let ns = sweep_ns(opts.max_n);
    print!("{:>8}", "n");
    for lc in [100u64, 200, 400] {
        print!(" {:>12}", format!("l_c={lc}"));
    }
    println!();
    for &n in &ns {
        print!("{n:>8}");
        for lc in [100u64, 200, 400] {
            print!(" {:>12.2}", analysis::ehpp::average_vector_length(n, lc, 0));
        }
        println!();
    }
    println!("(paper anchor: ≈ 7.94 bits at l_c = 200, n = 10^5; flat in n)");
}

fn fig8() {
    println!("\n== Fig. 8 — singleton probability mu(lambda) = lambda*e^(-lambda) ==");
    println!("{:>8} {:>10}", "lambda", "mu");
    for (l, m) in analysis::mu::mu_series(4.0, 16) {
        println!("{l:>8.2} {m:>10.4}");
    }
    let (lo, hi) = analysis::mu::optimal_load_interval();
    println!(
        "(peak 1/e ≈ {:.4} at λ = 1; μ(ln2) = μ(2ln2) = {:.4}; optimal λ ∈ [{lo:.3}, {hi:.3}))",
        (-1f64).exp(),
        analysis::mu::min_max_mu()
    );
}

fn fig9(opts: &ReproOptions) {
    println!("\n== Fig. 9 — TPP analytic average vector length, Eqs. (6)(8)(11)(15) ==");
    println!("{:>8} {:>10}", "n", "w (bits)");
    for (n, w) in analysis::tpp::fig9_series(&sweep_ns(opts.max_n)) {
        println!("{n:>8} {w:>10.3}");
    }
    println!(
        "(paper: stable ≈ {}; global Eq. (16) bound {:.4})",
        anchors::FIG9_TPP_ANALYTIC,
        analysis::tpp::global_bound()
    );
}

fn fig10(engine: &mut SweepEngine, opts: &ReproOptions) {
    println!(
        "\n== Fig. 10 — simulated average polling-vector length ({} runs) ==",
        opts.runs
    );
    println!("{:>8} {:>14} {:>14} {:>14}", "n", "HPP", "EHPP", "TPP");
    let ns: Vec<u64> = [10_000u64, 20_000, 40_000, 60_000, 80_000, 100_000]
        .into_iter()
        .filter(|&n| n <= opts.max_n)
        .collect();
    let rows: Vec<Row> = vec![
        Row::new("HPP", to_json_string(&HppConfig::default()), || {
            Box::new(HppConfig::default().into_protocol())
        }),
        Row::new("EHPP", to_json_string(&EhppConfig::default()), || {
            Box::new(EhppConfig::default().into_protocol())
        }),
        Row::new("TPP", to_json_string(&TppConfig::default()), || {
            Box::new(TppConfig::default().into_protocol())
        }),
    ];
    // Cells in (n, protocol) row-major order; the whole figure runs as one
    // parallel batch.
    let mut cells = Vec::new();
    for &n in &ns {
        let scenario = Scenario::uniform(n as usize, 1).with_seed(n);
        for row in &rows {
            cells.push(Cell::new(
                row.label,
                row.config.clone(),
                scenario.clone(),
                opts.runs,
                row.factory.as_ref(),
            ));
        }
    }
    let results = engine.run_cells(&cells);
    for (i, &n) in ns.iter().enumerate() {
        let hpp = summary_of(&results[i * 3], Report::mean_vector_bits);
        let ehpp = summary_of(&results[i * 3 + 1], Report::mean_vector_bits_with_overhead);
        let tpp = summary_of(&results[i * 3 + 2], Report::mean_vector_bits);
        println!(
            "{n:>8} {:>9.2}±{:<4.2} {:>9.2}±{:<4.2} {:>9.2}±{:<4.2}",
            hpp.mean, hpp.std, ehpp.mean, ehpp.std, tpp.mean, tpp.std
        );
    }
    println!(
        "(paper anchors: HPP {}→{} bits, EHPP ≈ {}, TPP ≈ {}; EHPP/TPP flat in n)",
        anchors::FIG10_HPP_AT_1K,
        anchors::FIG10_HPP_AT_100K,
        anchors::FIG10_EHPP,
        anchors::FIG10_TPP
    );
}

// ----------------------------------------------------------------- tables

/// The six table rows (CPP/HPP/EHPP/MIC/TPP/LowerBound) at their default
/// configurations.
fn table_rows() -> Vec<Row> {
    vec![
        Row::new("CPP", to_json_string(&CppConfig::default()), || {
            Box::new(CppConfig::default().into_protocol())
        }),
        Row::new("HPP", to_json_string(&HppConfig::default()), || {
            Box::new(HppConfig::default().into_protocol())
        }),
        Row::new("EHPP", to_json_string(&EhppConfig::default()), || {
            Box::new(EhppConfig::default().into_protocol())
        }),
        Row::new("MIC", to_json_string(&MicConfig::default()), || {
            Box::new(MicConfig::default().into_protocol())
        }),
        Row::new("TPP", to_json_string(&TppConfig::default()), || {
            Box::new(TppConfig::default().into_protocol())
        }),
        Row::new("LowerBound", String::new(), || Box::new(LowerBound)),
    ]
}

fn table(engine: &mut SweepEngine, opts: &ReproOptions, l: usize) {
    let which = match l {
        1 => "I",
        16 => "II",
        _ => "III",
    };
    println!(
        "\n== Table {which} — execution time (s) to collect {l}-bit information ({} runs) ==",
        opts.runs
    );
    let ns: Vec<u64> = anchors::TABLE_NS
        .into_iter()
        .filter(|&n| n <= opts.max_n)
        .collect();
    if ns.is_empty() {
        println!("(no populations ≤ --max-n {})", opts.max_n);
        return;
    }
    print!("{:<12}", "protocol");
    for n in &ns {
        print!(" {:>16}", format!("n={n}"));
    }
    println!();

    let rows = table_rows();
    let mut cells = Vec::new();
    for row in &rows {
        for &n in &ns {
            let scenario = Scenario::uniform(n as usize, l).with_seed(n + l as u64);
            // CPP and LowerBound are deterministic in time; one run suffices.
            let runs = if row.label == "CPP" || row.label == "LowerBound" {
                1
            } else {
                opts.runs
            };
            cells.push(Cell::new(
                row.label,
                row.config.clone(),
                scenario,
                runs,
                row.factory.as_ref(),
            ));
        }
    }
    let results = engine.run_cells(&cells);

    let mut measured: Vec<Vec<f64>> = Vec::new();
    for (ri, row) in rows.iter().enumerate() {
        print!("{:<12}", row.label);
        let mut secs = Vec::new();
        for ci in 0..ns.len() {
            let s = summary_of(&results[ri * ns.len() + ci], |r| r.total_time.as_secs());
            secs.push(s.mean);
            print!(" {:>16.3}", s.mean);
        }
        measured.push(secs);
        println!();
    }

    // Paper anchors where the text quotes them.
    match l {
        1 => {
            println!(
                "paper (n = 10^4): CPP 37.70, HPP 8.12, EHPP 6.63, MIC 5.15, TPP 4.39, LB 3.25"
            );
            if let Some(col) = ns.iter().position(|&n| n == 10_000) {
                for (row, anchor) in measured.iter().zip(anchors::TABLE1.iter()) {
                    if let Some(p) = anchor.seconds[2] {
                        let dev = (row[col] - p) / p * 100.0;
                        println!(
                            "  {:<12} measured {:>7.2} vs paper {:>6.2}  ({dev:+.1} %)",
                            anchor.protocol, row[col], p
                        );
                    }
                }
            }
        }
        16 => {
            println!("paper (n = 10^4): TPP = 85.7 % of MIC, 78.3 % of EHPP, 68.6 % of HPP, 19.6 % of CPP");
            if let Some(col) = ns.iter().position(|&n| n == 10_000) {
                let tpp = measured[4][col];
                for (name, ratio) in anchors::TABLE2_TPP_RATIOS {
                    let idx = rows.iter().position(|r| r.label == name).expect("row");
                    println!(
                        "  TPP/{name:<5} measured {:>6.3} vs paper {ratio:.3}",
                        tpp / measured[idx][col]
                    );
                }
            }
        }
        _ => {
            println!("paper (n = 10^4): xLB — TPP 1.10, MIC 1.28, EHPP 1.31, HPP 1.45, CPP 4.14");
            if let Some(col) = ns.iter().position(|&n| n == 10_000) {
                let lb = measured[5][col];
                for (name, ratio) in anchors::TABLE3_LB_RATIOS {
                    let idx = rows.iter().position(|r| r.label == name).expect("row");
                    println!(
                        "  {name:<5}/LB measured {:>6.3} vs paper {ratio:.2}",
                        measured[idx][col] / lb
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- energy

/// Extension experiment (after Qiao et al., MobiHoc'11): tag-side energy
/// per protocol — tags listen until read, so shorter polling vectors save
/// energy twice.
fn energy(engine: &mut SweepEngine, opts: &ReproOptions) {
    use rfid_analysis::energy::EnergyParams;
    let n = 10_000.min(opts.max_n) as usize;
    let runs = opts.runs.max(5);
    let scenario = Scenario::uniform(n, 1).with_seed(123);
    let link = LinkParams::paper();
    let params = EnergyParams::semi_passive();
    println!("\n== Energy extension — per-tag energy, semi-passive tags (n = {n}, {runs} runs) ==");
    println!(
        "{:<12} {:>14} {:>12} {:>12}",
        "protocol", "per tag (µJ)", "rx (mJ)", "tx (mJ)"
    );
    let rows: Vec<Row> = table_rows()
        .into_iter()
        .filter(|r| r.label != "LowerBound")
        .collect();
    let cells: Vec<Cell<'_>> = rows
        .iter()
        .map(|row| {
            Cell::new(
                row.label,
                row.config.clone(),
                scenario.clone(),
                runs,
                row.factory.as_ref(),
            )
        })
        .collect();
    let results = engine.run_cells(&cells);
    for (row, reports) in rows.iter().zip(&results) {
        let per_tag = summary_of(reports, |r| r.tag_energy(&params, &link).per_tag_uj());
        let rx = summary_of(reports, |r| r.tag_energy(&params, &link).rx_mj);
        let tx = summary_of(reports, |r| r.tag_energy(&params, &link).tx_mj);
        println!(
            "{:<12} {:>14.2} {:>12.2} {:>12.3}",
            row.label, per_tag.mean, rx.mean, tx.mean
        );
    }
    println!("(listen energy dominates; TPP's short vectors and early sleeps win)");
}

// --------------------------------------------------------------- recovery

/// The chaos-soak recovery grid (ISSUE 5's convergence gate): HPP/EHPP/TPP
/// with deliberately small per-pass budgets, swept over a fault-space grid
/// (i.i.d. loss × Gilbert–Elliott burst × corruption), every run wrapped in
/// a recovery session through the sweep engine. Asserts the convergence
/// invariant — coverage 1.0 on every survivable cell when passes are
/// unbounded — plus the degraded-cell contract (a jammed downlink opens the
/// circuit at `max_passes` with coverage 0), cross-checks a traced degraded
/// run against the event log, and writes `target/BENCH_recovery.json` with
/// passes-to-completion and time overhead vs the fault-free baseline.
fn recovery(engine: &mut SweepEngine, opts: &ReproOptions) {
    use rfid_obs::{metrics_from_log, reconcile};
    use rfid_protocols::{run_recovered, RecoveryOutcome, RecoveryPolicy};
    use rfid_system::fault::{FaultPlan, KillRule};
    use rfid_system::{FaultModel, GilbertElliott, Json, SimConfig, SimContext, ToJson};

    let n = 1_000.min(opts.max_n) as usize;
    let runs = opts.runs;
    println!("\n== Recovery — chaos-soak convergence grid (n = {n}, {runs} runs) ==");

    // Small per-pass round budgets so survivable faults genuinely exercise
    // multi-pass recovery instead of converging inside pass 1's (huge)
    // default budget.
    let hpp_cfg = HppConfig {
        max_rounds: 24,
        ..HppConfig::default()
    };
    let ehpp_cfg = EhppConfig {
        max_circles: 12,
        ..EhppConfig::default()
    };
    let tpp_cfg = TppConfig {
        max_rounds: 24,
        ..TppConfig::default()
    };
    let rows: Vec<Row> = vec![
        Row::new("HPP", to_json_string(&hpp_cfg), move || {
            Box::new(hpp_cfg.into_protocol())
        }),
        Row::new("EHPP", to_json_string(&ehpp_cfg), move || {
            Box::new(ehpp_cfg.clone().into_protocol())
        }),
        Row::new("TPP", to_json_string(&tpp_cfg), move || {
            Box::new(tpp_cfg.into_protocol())
        }),
    ];
    let faults: Vec<(&str, Option<FaultModel>)> = vec![
        ("fault-free", None),
        (
            "loss 0.1",
            Some(FaultModel::perfect().with_downlink_loss(0.1)),
        ),
        (
            "loss 0.3",
            Some(FaultModel::perfect().with_downlink_loss(0.3)),
        ),
        (
            "loss 0.5",
            Some(FaultModel::perfect().with_downlink_loss(0.5)),
        ),
        (
            "burst",
            Some(FaultModel::perfect().with_burst(GilbertElliott::new(0.05, 0.25, 0.0, 0.95))),
        ),
        (
            "corrupt 0.3",
            Some(FaultModel::perfect().with_corruption(0.3)),
        ),
    ];

    // Grid in (fault, protocol) row-major order, one parallel batch.
    let mut cells = Vec::new();
    for (fi, (_, fault)) in faults.iter().enumerate() {
        let scenario = Scenario::uniform(n, 1).with_seed(5_000 + fi as u64);
        for row in &rows {
            let mut cell = Cell::new(
                row.label,
                row.config.clone(),
                scenario.clone(),
                runs,
                row.factory.as_ref(),
            )
            .with_recovery(RecoveryPolicy::unbounded());
            if let Some(f) = fault {
                cell = cell.with_fault(f.clone());
            }
            cells.push(cell);
        }
    }
    let results = engine.run_cells(&cells);

    println!(
        "{:<12} {:<12} {:>10} {:>10} {:>12} {:>10}",
        "fault", "protocol", "coverage", "passes", "time (s)", "overhead"
    );
    let mut entries: Vec<Json> = Vec::new();
    let mut baseline: Vec<f64> = vec![0.0; rows.len()];
    for (fi, (flabel, _)) in faults.iter().enumerate() {
        for (ri, row) in rows.iter().enumerate() {
            let reports = &results[fi * rows.len() + ri];
            // The convergence gate: every survivable cell (loss < 1.0)
            // under an unbounded policy reaches coverage 1.0, every run.
            for (r, report) in reports.iter().enumerate() {
                assert_eq!(
                    report.counters.polls as usize, report.tags,
                    "convergence violated: {} under `{flabel}` run {r} collected \
                     {} of {} tags",
                    row.label, report.counters.polls, report.tags
                );
            }
            let passes = summary_of(reports, |r| (r.counters.recovery_passes + 1) as f64);
            let secs = summary_of(reports, |r| r.total_time.as_secs());
            if fi == 0 {
                baseline[ri] = secs.mean;
            }
            let overhead = secs.mean / baseline[ri];
            println!(
                "{flabel:<12} {:<12} {:>10.3} {:>10.2} {:>12.3} {:>9.2}x",
                row.label, 1.0, passes.mean, secs.mean, overhead
            );
            entries.push(Json::Obj(vec![
                ("fault".to_string(), Json::str(*flabel)),
                ("protocol".to_string(), Json::str(row.label)),
                ("n".to_string(), (n as u64).to_json()),
                ("runs".to_string(), runs.to_json()),
                ("coverage".to_string(), 1.0f64.to_json()),
                ("mean_passes".to_string(), passes.mean.to_json()),
                ("max_passes".to_string(), passes.max.to_json()),
                ("mean_time_s".to_string(), secs.mean.to_json()),
                ("overhead_vs_fault_free".to_string(), overhead.to_json()),
            ]));
        }
    }

    // Degraded contract: a jammed downlink cannot complete; a bounded
    // policy opens the circuit at exactly `max_passes` with coverage 0.
    let dead_policy = RecoveryPolicy::unbounded().with_max_passes(4);
    let dead_cell = Cell::new(
        "HPP",
        to_json_string(&hpp_cfg),
        Scenario::uniform(n, 1).with_seed(6_000),
        runs.min(4),
        rows[0].factory.as_ref(),
    )
    .with_fault(FaultModel::perfect().with_downlink_loss(1.0))
    .with_recovery(dead_policy);
    let dead = &engine.run_cells(std::slice::from_ref(&dead_cell))[0];
    for report in dead {
        assert_eq!(report.counters.polls, 0, "a jammed downlink polled a tag");
        assert_eq!(
            report.counters.recovery_passes, 3,
            "circuit must open at max_passes = 4"
        );
    }
    println!(
        "{:<12} {:<12} {:>10.3} {:>10.2} (degraded by design: circuit at {} passes)",
        "loss 1.0", "HPP", 0.0, 4.0, 4
    );
    entries.push(Json::Obj(vec![
        ("fault".to_string(), Json::str("loss 1.0")),
        ("protocol".to_string(), Json::str("HPP")),
        ("n".to_string(), (n as u64).to_json()),
        ("runs".to_string(), runs.min(4).to_json()),
        ("coverage".to_string(), 0.0f64.to_json()),
        ("mean_passes".to_string(), 4.0f64.to_json()),
        ("max_passes".to_string(), 4.0f64.to_json()),
    ]));

    // Trace cross-check (one traced degraded run, outside the engine): the
    // recovery events must reconcile bit-for-bit with the counters, and the
    // Degraded coverage must equal the trace-derived coverage series.
    let sc = Scenario::uniform(200.min(n), 1).with_seed(6_001);
    let plan = FaultPlan {
        kill_after_replies: vec![KillRule {
            tag: 7,
            after_replies: 0,
        }],
        ..FaultPlan::none()
    };
    let cfg = SimConfig::paper(sc.protocol_seed())
        .with_fault(FaultModel::perfect().with_plan(plan))
        .with_trace();
    let mut ctx = SimContext::new(sc.build_population(), &cfg);
    let protocol = HppConfig::default().into_protocol();
    let out = run_recovered(&protocol, &RecoveryPolicy::unbounded(), &mut ctx);
    let RecoveryOutcome::Degraded { coverage, .. } = out else {
        panic!("a killed tag must degrade the run");
    };
    reconcile(&ctx.log, &ctx.counters).expect("recovery trace reconciles against counters");
    let m = metrics_from_log(&ctx.log);
    let traced = m
        .series("coverage_pct")
        .and_then(|s| s.last())
        .expect("degraded run leaves a coverage series")
        .value;
    assert!(
        (traced - coverage * 100.0).abs() < 1e-9,
        "trace-derived coverage {traced} disagrees with Degraded coverage {coverage}"
    );
    println!("trace cross-check: degraded coverage {coverage:.4} == trace series, reconciled OK");

    if let Some(dir) = rfid_bench::find_target_dir() {
        let doc = Json::Obj(vec![
            ("group".to_string(), Json::str("recovery")),
            ("entries".to_string(), Json::Arr(entries)),
        ]);
        let path = dir.join("BENCH_recovery.json");
        match std::fs::write(&path, doc.to_pretty_string() + "\n") {
            Ok(()) => println!("recovery report: {}", path.display()),
            Err(e) => eprintln!("could not write BENCH_recovery.json: {e}"),
        }
    }
}

// ---------------------------------------------------------------- session

/// The resumable-session experiment: for each protocol, run the golden
/// scenario once uninterrupted, then again with a seeded mid-run kill —
/// snapshot, drop the process image, restore from the JSON, finish — and
/// prove the final report and event trace bit-identical.
///
/// `--checkpoint PATH` additionally writes the first killed run's snapshot
/// to disk; `--resume PATH` skips the gate entirely and instead restores
/// the given snapshot and runs it to completion (the two flags together
/// demonstrate a cross-process crash/restore cycle).
fn session(opts: &ReproOptions) {
    use rfid_baselines::{CodedPollingConfig, FsaConfig};
    use rfid_bench::fnv64;
    use rfid_hash::Xoshiro256;
    use rfid_identify::{BinarySplitConfig, QAlgorithmConfig, QueryTreeConfig};
    use rfid_protocols::{Session, SessionEnd};
    use rfid_system::{Json, SimConfig, SimContext, ToJson};

    let protocols: Vec<Box<dyn PollingProtocol>> = vec![
        Box::new(CppConfig::default().into_protocol()),
        Box::new(EcppConfig::default().into_protocol()),
        Box::new(CodedPollingConfig::default().into_protocol()),
        Box::new(HppConfig::default().into_protocol()),
        Box::new(EhppConfig::default().into_protocol()),
        Box::new(TppConfig::default().into_protocol()),
        Box::new(MicConfig::default().into_protocol()),
        Box::new(FsaConfig::default().into_protocol()),
        Box::new(LowerBound),
        Box::new(QueryTreeConfig::default().into_protocol()),
        Box::new(BinarySplitConfig::default().into_protocol()),
        Box::new(QAlgorithmConfig::default().into_protocol()),
    ];

    // --resume: restore a snapshot written by a previous (crashed or
    // checkpointed) invocation and finish the inventory.
    if let Some(path) = &opts.resume {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read {}: {e}", path.display());
            std::process::exit(2);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{} is not valid JSON: {e}", path.display());
            std::process::exit(2);
        });
        let name: String = doc.field("protocol").unwrap_or_else(|e| {
            eprintln!("{} is not a session snapshot: {e}", path.display());
            std::process::exit(2);
        });
        let Some(protocol) = protocols.iter().find(|p| p.name() == name) else {
            eprintln!("snapshot is for unknown protocol `{name}`");
            std::process::exit(2);
        };
        let (mut ctx, mut session) =
            Session::restore(protocol.as_ref(), &doc).unwrap_or_else(|e| {
                eprintln!("could not restore {}: {e}", path.display());
                std::process::exit(2);
            });
        println!(
            "resuming {name} from {} (pass {}, {} step(s) into the pass)",
            path.display(),
            session.passes(),
            session.steps_taken()
        );
        match session.run(&mut ctx) {
            SessionEnd::Complete { report, passes } => println!(
                "complete: {} tags polled in {:.3} s over {passes} pass(es)",
                report.counters.polls,
                report.total_time.as_secs()
            ),
            other => println!("session ended without completing: {other:?}"),
        }
        return;
    }

    println!("\n== Session — crash-chaos checkpoint/restore gate (n = 150, seed 31) ==");
    println!(
        "{:<12} {:>6} {:>10} {:>10}  {}",
        "protocol", "kill@", "snapshot", "restored", "bit-identical"
    );
    let scenario = Scenario::uniform(150, 4).with_seed(31);
    let cfg = SimConfig::paper(scenario.protocol_seed()).with_trace();
    let mut rng = Xoshiro256::seed_from_u64(0x5E55_1017);
    let mut checkpoint = opts.checkpoint.clone();
    for protocol in &protocols {
        let name = protocol.name();

        // Uninterrupted reference, stepped to count killable boundaries.
        let mut ctx = SimContext::new(scenario.build_population(), &cfg);
        let mut sess = Session::open(protocol.as_ref(), &ctx);
        let mut boundaries = 0u64;
        let reference = loop {
            match sess.run_for(&mut ctx, 1) {
                Some(end) => break end,
                None => boundaries += 1,
            }
        };
        let SessionEnd::Complete { report, .. } = reference else {
            panic!("{name}: reference run did not complete");
        };
        let ref_json = report.to_json().to_string();
        let ref_trace = fnv64(&ctx.log.to_jsonl());

        // Killed run: crash at a seeded boundary, survive as JSON only.
        let kill = 1 + rng.below(boundaries.max(1));
        let mut ctx = SimContext::new(scenario.build_population(), &cfg);
        let mut sess = Session::open(protocol.as_ref(), &ctx);
        assert!(
            sess.run_for(&mut ctx, kill).is_none(),
            "{name}: kill point {kill} of {boundaries} must land mid-run"
        );
        let snap = sess.snapshot(&ctx, &cfg).to_string();
        drop(sess);
        drop(ctx);
        if let Some(path) = checkpoint.take() {
            match std::fs::write(&path, snap.as_bytes()) {
                Ok(()) => println!(
                    "checkpoint: {name} killed at step {kill} -> {} \
                     (finish it with `repro session --resume`)",
                    path.display()
                ),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
        let doc = Json::parse(&snap).expect("snapshot parses");
        let (mut ctx, mut sess) =
            Session::restore(protocol.as_ref(), &doc).expect("snapshot restores");
        let end = sess.run(&mut ctx);
        let SessionEnd::Complete { report, .. } = end else {
            panic!("{name}: restored run did not complete: {end:?}");
        };
        let identical =
            report.to_json().to_string() == ref_json && fnv64(&ctx.log.to_jsonl()) == ref_trace;
        println!(
            "{name:<12} {kill:>6} {:>9}B {:>10} {:>10}",
            snap.len(),
            "ok",
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "{name}: restored run drifted from the reference");
    }
    println!("(every restored run reproduced its reference bit-for-bit)");
}

// -------------------------------------------------------------- ablations

fn ablations(engine: &mut SweepEngine, opts: &ReproOptions) {
    let n = 10_000.min(opts.max_n) as usize;
    let runs = opts.runs.max(5);
    let scenario = Scenario::uniform(n, 1).with_seed(99);
    println!("\n== Ablations (n = {n}, l = 1, {runs} runs) ==");

    // One batch for the whole section: rows 0..N in a fixed order, metrics
    // picked per row below.
    let hpp_rule_cfg = TppConfig {
        index_rule: IndexRule::HppRule,
        ..TppConfig::default()
    };
    let n_star = EhppConfig::default().effective_subset_size();
    let mut rows: Vec<Row> = vec![
        Row::new("TPP", to_json_string(&TppConfig::default()), || {
            Box::new(TppConfig::default().into_protocol())
        }),
        Row::new("TPP-hpp-rule", to_json_string(&hpp_rule_cfg), move || {
            Box::new(hpp_rule_cfg.into_protocol())
        }),
    ];
    let subset_sizes = [n_star / 2, n_star, n_star * 2];
    for size in subset_sizes {
        let cfg = EhppConfig {
            subset_size: Some(size),
            ..EhppConfig::default()
        };
        let json = to_json_string(&cfg);
        rows.push(Row::new("EHPP-subset", json, move || {
            Box::new(cfg.clone().into_protocol())
        }));
    }
    let mic_ks = [1usize, 2, 4, 7];
    for k in mic_ks {
        let cfg = MicConfig {
            k,
            ..MicConfig::default()
        };
        let json = to_json_string(&cfg);
        rows.push(Row::new("MIC-k", json, move || {
            Box::new(cfg.clone().into_protocol())
        }));
    }
    rows.push(Row::new(
        "HPP",
        to_json_string(&HppConfig::default()),
        || Box::new(HppConfig::default().into_protocol()),
    ));
    let cells: Vec<Cell<'_>> = rows
        .iter()
        .map(|row| {
            Cell::new(
                row.label,
                row.config.clone(),
                scenario.clone(),
                runs,
                row.factory.as_ref(),
            )
        })
        .collect();
    let results = engine.run_cells(&cells);

    // 1. TPP index-length rule: Eq. (15) vs HPP's rule.
    let opt = summary_of(&results[0], Report::mean_vector_bits);
    let hpp_rule = summary_of(&results[1], Report::mean_vector_bits);
    println!(
        "TPP h-rule:      Eq.(15) {:.3} bits  vs  HPP-rule {:.3} bits",
        opt.mean, hpp_rule.mean
    );

    // 2. EHPP subset size: Theorem-1 optimum vs halved/doubled.
    for (i, (label, size)) in [
        ("n*/2", subset_sizes[0]),
        ("n* (Thm 1)", subset_sizes[1]),
        ("2n*", subset_sizes[2]),
    ]
    .into_iter()
    .enumerate()
    {
        let s = summary_of(&results[2 + i], Report::mean_vector_bits_with_overhead);
        println!(
            "EHPP subset {label:<11} ({size:>4} tags): {:.3} bits incl. overhead",
            s.mean
        );
    }

    // 3. MIC hash count.
    for (i, k) in mic_ks.into_iter().enumerate() {
        let reports = &results[5 + i];
        let secs = summary_of(reports, |r| r.total_time.as_secs());
        let waste = summary_of(reports, |r| {
            r.counters.empty_slots as f64 / (r.counters.empty_slots + r.counters.polls) as f64
        });
        println!(
            "MIC k={k}:  {:.3} s, wasted slots {:.1} %",
            secs.mean,
            waste.mean * 100.0
        );
    }

    // 4. Tree encoding vs flat singleton broadcast at the same h (isolates
    //    the polling tree itself): TPP with HPP's h vs HPP.
    let flat = summary_of(&results[9], Report::mean_vector_bits);
    println!(
        "tree encoding:   flat HPP {:.3} bits  vs  tree @ same h {:.3} bits",
        flat.mean, hpp_rule.mean
    );

    // 5. ID-distribution sensitivity: the hashed protocols are
    //    distribution-free; eCPP is not. A second small batch (the rows
    //    above all share the uniform scenario).
    let dist_rows: Vec<Row> = vec![
        Row::new("TPP", to_json_string(&TppConfig::default()), || {
            Box::new(TppConfig::default().into_protocol())
        }),
        Row::new("eCPP", to_json_string(&EcppConfig::default()), || {
            Box::new(EcppConfig::default().into_protocol())
        }),
    ];
    let dists = [
        ("uniform", IdDistribution::UniformRandom),
        ("clustered", IdDistribution::Clustered { categories: 10 }),
    ];
    let mut dist_cells = Vec::new();
    for (_, dist) in &dists {
        let sc = scenario.clone().with_ids(dist.clone());
        for row in &dist_rows {
            dist_cells.push(Cell::new(
                row.label,
                row.config.clone(),
                sc.clone(),
                runs,
                row.factory.as_ref(),
            ));
        }
    }
    let dist_results = engine.run_cells(&dist_cells);
    for (i, (label, _)) in dists.iter().enumerate() {
        let tpp = summary_of(&dist_results[i * 2], Report::mean_vector_bits);
        let ecpp = summary_of(&dist_results[i * 2 + 1], Report::mean_vector_bits);
        println!(
            "IDs {label:<10} TPP {:.3} bits, eCPP {:.1} bits",
            tpp.mean, ecpp.mean
        );
    }
}
