//! `obs_report` — renders telemetry from traced protocol runs.
//!
//! Modes (any unrecognised flag prints the full usage text and exits 2;
//! parsing lives in `rfid_bench::cli` alongside the `repro` binary's):
//!
//! * default — re-creates the paper's worked examples from event traces
//!   rather than from counters: the HPP round-by-round walk of Fig. 2, the
//!   EHPP per-circle breakdown behind Fig. 6 (vector length flat in `n`),
//!   and the TPP differential-suffix average behind Fig. 7 (~3 bits/tag),
//!   each followed by the trace-derived metric summary.
//! * `--flame` — runs the three paper protocols with span profiling on and
//!   renders the session→pass→round→poll hierarchy as a flame table plus
//!   deterministic folded stacks (DESIGN.md §14).
//! * `--reconcile` — the CI gate: one traced run of *every* protocol (plus
//!   an impaired run of each fault-tolerant one) replayed through
//!   `rfid_obs::reconcile`; any counter/trace disagreement exits nonzero.
//! * `--check-hotpath <path>` — validates `BENCH_hotpath.json`: a
//!   completed 1M-tag run and a gated n = 100k case at ≥ 10× (§12).
//! * `--check-session <path>` — validates `BENCH_session.json`: every
//!   kill/snapshot/restore case bit-identical, full clean coverage,
//!   impaired paper protocols, multi-pass recovery (§13).
//! * `--check-obsplane <path>` — validates `BENCH_obsplane.json`: the
//!   disabled span path within noise, the enabled full-profiling overhead
//!   under its ceiling, and profiling on/off bit-identity (§14).
//! * `--check-daemon <path>` — validates `BENCH_daemon.json`: every case
//!   completed its expected sessions, positive ordered latency
//!   percentiles, and a concurrent fan-out case (§15).
//! * `--check-resilience <path>` — validates `BENCH_resilience.json`:
//!   100% bit-identical recovery in every chaos-soak arm, faults actually
//!   injected, resurrection and shedding floors met (§16).

use rfid_baselines::{CodedPollingConfig, CppConfig, EcppConfig, FsaConfig, LowerBound, MicConfig};
use rfid_bench::cli::{obs_usage, parse_obs_args, ObsMode};
use rfid_identify::{BinarySplitConfig, QAlgorithmConfig, QueryTreeConfig};
use rfid_obs::{metrics_from_log, reconcile, render_flame, Log2Histogram, MetricsRegistry};
use rfid_protocols::{EhppConfig, HppConfig, PollingProtocol, TppConfig};
use rfid_system::{
    BitVec, Event, FaultModel, GilbertElliott, SimConfig, SimContext, TagPopulation, TimedEvent,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_obs_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("obs_report: {msg}\n");
            eprint!("{}", obs_usage());
            std::process::exit(2);
        }
    };
    let n = opts.n.unwrap_or(200);
    let seed = opts.seed.unwrap_or(1);
    let code = match opts.mode {
        ObsMode::CheckHotpath(path) => check_hotpath_report(&path.display().to_string()),
        ObsMode::CheckSession(path) => check_session_report(&path.display().to_string()),
        ObsMode::CheckObsplane(path) => check_obsplane_report(&path.display().to_string()),
        ObsMode::CheckDaemon(path) => check_daemon_report(&path.display().to_string()),
        ObsMode::CheckResilience(path) => check_resilience_report(&path.display().to_string()),
        ObsMode::Reconcile => run_reconcile_gate(n.min(120), seed),
        ObsMode::Flame => {
            render_flame_profiles(n, seed);
            0
        }
        ObsMode::Examples => {
            render_worked_examples(n, seed);
            0
        }
    };
    std::process::exit(code);
}

fn traced_run(protocol: &dyn PollingProtocol, n: usize, cfg: &SimConfig) -> SimContext {
    let pop = TagPopulation::sequential(n, |i| BitVec::from_value((i % 2) as u64, 1));
    let mut ctx = SimContext::new(pop, cfg);
    let _ = protocol.try_run(&mut ctx);
    ctx
}

// ---------------------------------------------------------------------------
// Default mode: worked examples + metric summaries
// ---------------------------------------------------------------------------

/// Per-round aggregates replayed from a trace.
struct RoundRow {
    round: usize,
    h: u32,
    unread: usize,
    polls: u64,
    vector_bits: u64,
}

/// Per-circle aggregates (EHPP) replayed from a trace.
struct CircleRow {
    circle: usize,
    selected: usize,
    rounds: u64,
    polls: u64,
    vector_bits: u64,
}

fn round_rows<'a>(events: impl IntoIterator<Item = &'a TimedEvent>) -> Vec<RoundRow> {
    let mut rows: Vec<RoundRow> = Vec::new();
    for te in events {
        match te.event {
            Event::RoundStarted { round, h, unread } => rows.push(RoundRow {
                round,
                h,
                unread,
                polls: 0,
                vector_bits: 0,
            }),
            Event::TagPolled { vector_bits, .. } => {
                if let Some(row) = rows.last_mut() {
                    row.polls += 1;
                    row.vector_bits += vector_bits;
                }
            }
            _ => {}
        }
    }
    rows
}

fn circle_rows<'a>(events: impl IntoIterator<Item = &'a TimedEvent>) -> Vec<CircleRow> {
    let mut rows: Vec<CircleRow> = Vec::new();
    for te in events {
        match te.event {
            Event::CircleStarted { circle, selected } => rows.push(CircleRow {
                circle,
                selected,
                rounds: 0,
                polls: 0,
                vector_bits: 0,
            }),
            Event::RoundStarted { .. } => {
                if let Some(row) = rows.last_mut() {
                    row.rounds += 1;
                }
            }
            Event::TagPolled { vector_bits, .. } => {
                if let Some(row) = rows.last_mut() {
                    row.polls += 1;
                    row.vector_bits += vector_bits;
                }
            }
            _ => {}
        }
    }
    rows
}

fn print_histogram(name: &str, h: &Log2Histogram) {
    let pct = |q: f64| h.percentile(q).map_or(0, |v| v);
    println!(
        "    {name:<16} n={:<6} mean={:<9.2} p50≤{:<6} p95≤{:<6} max={}",
        h.count(),
        h.mean(),
        pct(0.5),
        pct(0.95),
        h.max().unwrap_or(0),
    );
}

fn print_metric_summary(m: &MetricsRegistry) {
    println!("  trace-derived metrics:");
    for name in ["vector_bits", "poll_latency_us", "slot_us"] {
        if let Some(h) = m.histogram(name) {
            print_histogram(name, h);
        }
    }
    if let Some(s) = m.series("unread_tags") {
        let tail: Vec<String> = s
            .points
            .iter()
            .rev()
            .take(5)
            .rev()
            .map(|p| format!("{:.0}@{:.0}µs", p.value, p.t_us))
            .collect();
        println!(
            "    unread_tags      {} samples, tail: {}",
            s.points.len(),
            tail.join(" → ")
        );
    }
}

fn render_worked_examples(n: usize, seed: u64) {
    let cfg = SimConfig::paper(seed).with_trace();

    // Fig. 2 — HPP: the reader announces (h, r); singleton indices become
    // the polling vector; every poll costs h bits.
    println!("== Fig. 2 worked example: HPP round walk (n={n}, seed={seed}) ==");
    let ctx = traced_run(&HppConfig::default().into_protocol(), n, &cfg);
    println!(
        "  {:>5} {:>4} {:>7} {:>6} {:>12} {:>10}",
        "round", "h", "unread", "polls", "vector bits", "bits/poll"
    );
    for row in round_rows(ctx.log.events()) {
        let per = if row.polls == 0 {
            0.0
        } else {
            row.vector_bits as f64 / row.polls as f64
        };
        println!(
            "  {:>5} {:>4} {:>7} {:>6} {:>12} {:>10.2}",
            row.round, row.h, row.unread, row.polls, row.vector_bits, per
        );
    }
    println!(
        "  totals: {} polls, {} vector bits ({:.2} bits/tag), {} over {} rounds",
        ctx.counters.polls,
        ctx.counters.vector_bits,
        ctx.counters.mean_vector_bits(),
        ctx.clock.total(),
        ctx.counters.rounds,
    );
    print_metric_summary(&metrics_from_log(&ctx.log));

    // Fig. 6 — EHPP: circles of the Theorem-1 size keep the per-tag vector
    // length flat as n grows. The default optimum exceeds small populations
    // (where EHPP degenerates to HPP), so force circles small enough that
    // the example always shows the circle structure.
    println!();
    println!("== Fig. 6 worked example: EHPP per-circle breakdown (n={n}, seed={seed}) ==");
    let ehpp = EhppConfig {
        subset_size: Some(((n as u64) / 4).max(1)),
        ..EhppConfig::default()
    };
    let ctx = traced_run(&ehpp.into_protocol(), n, &cfg);
    println!(
        "  {:>6} {:>8} {:>6} {:>6} {:>12} {:>9}",
        "circle", "selected", "rounds", "polls", "vector bits", "bits/tag"
    );
    for row in circle_rows(ctx.log.events()) {
        let per = if row.polls == 0 {
            0.0
        } else {
            row.vector_bits as f64 / row.polls as f64
        };
        println!(
            "  {:>6} {:>8} {:>6} {:>6} {:>12} {:>9.2}",
            row.circle, row.selected, row.rounds, row.polls, row.vector_bits, per
        );
    }
    println!(
        "  totals: {:.2} vector bits/tag over {} circles (flat in n)",
        ctx.counters.mean_vector_bits(),
        ctx.counters.circles,
    );
    print_metric_summary(&metrics_from_log(&ctx.log));

    // Fig. 7 — TPP: the pre-order tree traversal charges each tag only the
    // differential suffix (~3 bits regardless of n).
    println!();
    println!("== Fig. 7 worked example: TPP differential suffixes (n={n}, seed={seed}) ==");
    let ctx = traced_run(&TppConfig::default().into_protocol(), n, &cfg);
    println!(
        "  {:.2} vector bits/tag over {} rounds (paper's asymptote ≈ 3.06)",
        ctx.counters.mean_vector_bits(),
        ctx.counters.rounds,
    );
    print_metric_summary(&metrics_from_log(&ctx.log));
}

// ---------------------------------------------------------------------------
// --check-hotpath: BENCH_hotpath.json shape + gate validation
// ---------------------------------------------------------------------------

/// Validates the hot-path bench report: parseable, expected schema, a
/// completed 1M-tag case, and ≥ 10× pre-change throughput on at least one
/// gated case at n = 100 000. Returns the process exit code.
fn check_hotpath_report(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-hotpath: cannot read {path}: {e}");
            return 1;
        }
    };
    let parsed = match rfid_system::Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check-hotpath: {path} is not well-formed JSON: {e}");
            return 1;
        }
    };
    let validate = || -> Result<(), String> {
        let group = parsed
            .get("group")
            .ok_or("missing `group`")?
            .as_str()
            .map_err(|e| e.to_string())?;
        if group != "hotpath" {
            return Err(format!("group is `{group}`, expected `hotpath`"));
        }
        let results = parsed
            .get("results")
            .ok_or("missing `results`")?
            .as_arr()
            .map_err(|e| e.to_string())?;
        if results.is_empty() {
            return Err("empty `results`".to_string());
        }
        let mut million_tag_run = false;
        let mut gated_100k_at_10x = false;
        for r in results {
            let name = r
                .get("name")
                .ok_or("result missing `name`")?
                .as_str()
                .map_err(|e| e.to_string())?;
            let n = r
                .get("n")
                .ok_or("result missing `n`")?
                .as_u64()
                .map_err(|e| e.to_string())?;
            for field in ["seconds", "tags_per_sec", "slots_per_sec", "speedup"] {
                let v = r
                    .get(field)
                    .ok_or_else(|| format!("{name}/{n} missing `{field}`"))?
                    .as_f64()
                    .map_err(|e| e.to_string())?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("{name}/{n}: `{field}` = {v} is not positive"));
                }
            }
            let gated = r
                .get("gated")
                .ok_or("result missing `gated`")?
                .as_bool()
                .map_err(|e| e.to_string())?;
            if n >= 1_000_000 {
                million_tag_run = true;
            }
            if gated && n == 100_000 {
                let speedup = r.get("speedup").unwrap().as_f64().unwrap();
                if speedup >= 10.0 {
                    gated_100k_at_10x = true;
                }
            }
        }
        if !million_tag_run {
            return Err("no completed 1M-tag case in the report".to_string());
        }
        if !gated_100k_at_10x {
            return Err("no gated n=100k case at ≥10× the pre-change baseline".to_string());
        }
        Ok(())
    };
    match validate() {
        Ok(()) => {
            println!("check-hotpath: {path} ok");
            0
        }
        Err(e) => {
            eprintln!("check-hotpath: {path} invalid: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------------
// --check-session: BENCH_session.json shape + crash-chaos gate validation
// ---------------------------------------------------------------------------

/// Validates the crash-chaos session report: parseable, expected schema,
/// every kill/snapshot/restore case bit-identical, all 12 protocols covered
/// on the clean channel, the four paper protocols impaired, and a
/// multi-pass recovery case. Returns the process exit code.
fn check_session_report(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-session: cannot read {path}: {e}");
            return 1;
        }
    };
    let parsed = match rfid_system::Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check-session: {path} is not well-formed JSON: {e}");
            return 1;
        }
    };
    let validate = || -> Result<(), String> {
        let group = parsed
            .get("group")
            .ok_or("missing `group`")?
            .as_str()
            .map_err(|e| e.to_string())?;
        if group != "session" {
            return Err(format!("group is `{group}`, expected `session`"));
        }
        let results = parsed
            .get("results")
            .ok_or("missing `results`")?
            .as_arr()
            .map_err(|e| e.to_string())?;
        if results.is_empty() {
            return Err("empty `results`".to_string());
        }
        let mut clean = std::collections::BTreeSet::new();
        let mut impaired = std::collections::BTreeSet::new();
        let mut multi_pass_recovery = false;
        for r in results {
            let name = r
                .get("name")
                .ok_or("result missing `name`")?
                .as_str()
                .map_err(|e| e.to_string())?;
            let channel = r
                .get("channel")
                .ok_or("result missing `channel`")?
                .as_str()
                .map_err(|e| e.to_string())?;
            let kill = r
                .get("kill_step")
                .ok_or("result missing `kill_step`")?
                .as_u64()
                .map_err(|e| e.to_string())?;
            let bytes = r
                .get("snapshot_bytes")
                .ok_or("result missing `snapshot_bytes`")?
                .as_u64()
                .map_err(|e| e.to_string())?;
            let passes = r
                .get("passes")
                .ok_or("result missing `passes`")?
                .as_u64()
                .map_err(|e| e.to_string())?;
            let identical = r
                .get("identical")
                .ok_or("result missing `identical`")?
                .as_bool()
                .map_err(|e| e.to_string())?;
            if !identical {
                return Err(format!(
                    "{name}/{channel}: restored run was NOT bit-identical"
                ));
            }
            if kill == 0 {
                return Err(format!("{name}/{channel}: kill_step 0 (never killed)"));
            }
            if bytes == 0 {
                return Err(format!(
                    "{name}/{channel}: snapshot_bytes 0 (snapshot path not exercised)"
                ));
            }
            match channel {
                "clean" => {
                    clean.insert(name.to_string());
                }
                "impaired" => {
                    impaired.insert(name.to_string());
                }
                "recovery" => multi_pass_recovery |= passes > 1,
                other => return Err(format!("{name}: unknown channel `{other}`")),
            }
        }
        if clean.len() < 12 {
            return Err(format!(
                "only {} clean protocols covered, expected all 12",
                clean.len()
            ));
        }
        for required in ["HPP", "EHPP", "TPP", "MIC"] {
            if !impaired.contains(required) {
                return Err(format!("no impaired case for {required}"));
            }
        }
        if !multi_pass_recovery {
            return Err("no multi-pass recovery case (passes > 1)".to_string());
        }
        Ok(())
    };
    match validate() {
        Ok(()) => {
            println!("check-session: {path} ok");
            0
        }
        Err(e) => {
            eprintln!("check-session: {path} invalid: {e}");
            1
        }
    }
}

/// Validates a `BENCH_obsplane.json` report: all three profiling-plane
/// gates present and passing — the disabled span path within noise, the
/// enabled overhead under its ceiling, and profiling on/off bit-identity.
/// Returns the process exit code.
fn check_obsplane_report(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-obsplane: cannot read {path}: {e}");
            return 1;
        }
    };
    let parsed = match rfid_system::Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check-obsplane: {path} is not well-formed JSON: {e}");
            return 1;
        }
    };
    let validate = || -> Result<(), String> {
        let group = parsed
            .get("group")
            .ok_or("missing `group`")?
            .as_str()
            .map_err(|e| e.to_string())?;
        if group != "obsplane" {
            return Err(format!("group is `{group}`, expected `obsplane`"));
        }
        let results = parsed
            .get("results")
            .ok_or("missing `results`")?
            .as_arr()
            .map_err(|e| e.to_string())?;
        let find = |name: &str| {
            results
                .iter()
                .find(|r| r.get("name").and_then(|n| n.as_str().ok()) == Some(name))
                .ok_or(format!("no `{name}` result"))
        };
        // The two overhead gates: ratio recorded, under its ceiling, gated.
        for name in ["disabled_span_path", "enabled_profiling_overhead"] {
            let r = find(name)?;
            let ratio = r
                .get("ratio")
                .ok_or(format!("{name}: missing `ratio`"))?
                .as_f64()
                .map_err(|e| e.to_string())?;
            let ceiling = r
                .get("ceiling")
                .ok_or(format!("{name}: missing `ceiling`"))?
                .as_f64()
                .map_err(|e| e.to_string())?;
            let gated = r
                .get("gated")
                .ok_or(format!("{name}: missing `gated`"))?
                .as_bool()
                .map_err(|e| e.to_string())?;
            if !gated || ratio > ceiling {
                return Err(format!(
                    "{name}: ratio {ratio:.2} exceeds ceiling {ceiling} (gated = {gated})"
                ));
            }
        }
        // The enabled gate must have run at the full 100 k-tag population.
        let enabled = find("enabled_profiling_overhead")?;
        let n = enabled
            .get("n")
            .ok_or("enabled_profiling_overhead: missing `n`")?
            .as_u64()
            .map_err(|e| e.to_string())?;
        if n < 100_000 {
            return Err(format!(
                "enabled_profiling_overhead ran at n = {n}, expected ≥ 100000"
            ));
        }
        // Bit-identity: profiling on/off must not move a single bit.
        let bit = find("bit_identity")?;
        let identical = bit
            .get("identical")
            .ok_or("bit_identity: missing `identical`")?
            .as_bool()
            .map_err(|e| e.to_string())?;
        if !identical {
            return Err("bit_identity: profiling perturbed the run".to_string());
        }
        Ok(())
    };
    match validate() {
        Ok(()) => {
            println!("check-obsplane: {path} ok");
            0
        }
        Err(e) => {
            eprintln!("check-obsplane: {path} invalid: {e}");
            1
        }
    }
}

/// Validates a `BENCH_daemon.json` report: every case completed exactly
/// its expected session count, throughput and latency figures are
/// positive and finite with ordered percentiles, and at least one case
/// exercised real concurrency (multiple clients) at fan-out scale
/// (≥ 100 sessions). Returns the process exit code.
fn check_daemon_report(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-daemon: cannot read {path}: {e}");
            return 1;
        }
    };
    let parsed = match rfid_system::Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check-daemon: {path} is not well-formed JSON: {e}");
            return 1;
        }
    };
    let validate = || -> Result<(), String> {
        let group = parsed
            .get("group")
            .ok_or("missing `group`")?
            .as_str()
            .map_err(|e| e.to_string())?;
        if group != "daemon" {
            return Err(format!("group is `{group}`, expected `daemon`"));
        }
        let results = parsed
            .get("results")
            .ok_or("missing `results`")?
            .as_arr()
            .map_err(|e| e.to_string())?;
        if results.is_empty() {
            return Err("empty `results`".to_string());
        }
        let mut concurrent_fanout = false;
        for r in results {
            let name = r
                .get("name")
                .ok_or("result missing `name`")?
                .as_str()
                .map_err(|e| e.to_string())?;
            r.get("protocol")
                .ok_or_else(|| format!("{name}: missing `protocol`"))?
                .as_str()
                .map_err(|e| e.to_string())?;
            let mut ints = std::collections::BTreeMap::new();
            for field in ["clients", "sessions", "expected", "completed", "n"] {
                let v = r
                    .get(field)
                    .ok_or_else(|| format!("{name}: missing `{field}`"))?
                    .as_u64()
                    .map_err(|e| e.to_string())?;
                if v == 0 {
                    return Err(format!("{name}: `{field}` is 0"));
                }
                ints.insert(field, v);
            }
            if ints["completed"] != ints["expected"] {
                return Err(format!(
                    "{name}: completed {} of {} sessions",
                    ints["completed"], ints["expected"]
                ));
            }
            let mut floats = std::collections::BTreeMap::new();
            for field in [
                "sessions_per_sec",
                "latency_p50_us",
                "latency_p90_us",
                "latency_p99_us",
                "latency_mean_us",
            ] {
                let v = r
                    .get(field)
                    .ok_or_else(|| format!("{name}: missing `{field}`"))?
                    .as_f64()
                    .map_err(|e| e.to_string())?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("{name}: `{field}` = {v} is not positive"));
                }
                floats.insert(field, v);
            }
            if floats["latency_p50_us"] > floats["latency_p90_us"]
                || floats["latency_p90_us"] > floats["latency_p99_us"]
            {
                return Err(format!("{name}: latency percentiles are not ordered"));
            }
            if ints["clients"] > 1 && ints["sessions"] >= 100 {
                concurrent_fanout = true;
            }
        }
        if !concurrent_fanout {
            return Err("no concurrent fan-out case (clients > 1, sessions ≥ 100)".to_string());
        }
        Ok(())
    };
    match validate() {
        Ok(()) => {
            println!("check-daemon: {path} ok");
            0
        }
        Err(e) => {
            eprintln!("check-daemon: {path} invalid: {e}");
            1
        }
    }
}

/// Validates a `BENCH_resilience.json` report: every chaos-soak case is
/// present with a 100% bit-identical recovery rate, the chaos arms
/// actually injected faults, the kill arm resurrected at least one
/// session, the shedding arm shed at least one client and reports
/// ordered positive latency percentiles, and the drain arm checkpointed
/// at least one live session. Returns the process exit code.
fn check_resilience_report(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-resilience: cannot read {path}: {e}");
            return 1;
        }
    };
    let parsed = match rfid_system::Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check-resilience: {path} is not well-formed JSON: {e}");
            return 1;
        }
    };
    let validate = || -> Result<(), String> {
        let group = parsed
            .get("group")
            .ok_or("missing `group`")?
            .as_str()
            .map_err(|e| e.to_string())?;
        if group != "resilience" {
            return Err(format!("group is `{group}`, expected `resilience`"));
        }
        let results = parsed
            .get("results")
            .ok_or("missing `results`")?
            .as_arr()
            .map_err(|e| e.to_string())?;
        let find = |name: &str| {
            results
                .iter()
                .find(|r| r.get("name").and_then(|n| n.as_str().ok()) == Some(name))
                .ok_or(format!("no `{name}` result"))
        };
        let int = |r: &rfid_system::Json, name: &str, field: &str| -> Result<u64, String> {
            r.get(field)
                .ok_or_else(|| format!("{name}: missing `{field}`"))?
                .as_u64()
                .map_err(|e| e.to_string())
        };
        // Every case: sessions attempted, and every one of them recovered
        // to the bit-identical clean-run report and trace digest.
        for name in [
            "reference",
            "chaos_flips",
            "chaos_cuts",
            "chaos_burst",
            "chaos_kill",
            "shed_pressure",
            "drain_shutdown",
        ] {
            let r = find(name)?;
            r.get("protocol")
                .ok_or_else(|| format!("{name}: missing `protocol`"))?
                .as_str()
                .map_err(|e| e.to_string())?;
            let sessions = int(r, name, "sessions")?;
            let recovered = int(r, name, "recovered")?;
            if sessions == 0 {
                return Err(format!("{name}: no sessions were attempted"));
            }
            if recovered != sessions {
                return Err(format!(
                    "{name}: only {recovered}/{sessions} sessions recovered bit-identically"
                ));
            }
            let rate = r
                .get("recovery_rate")
                .ok_or_else(|| format!("{name}: missing `recovery_rate`"))?
                .as_f64()
                .map_err(|e| e.to_string())?;
            if rate != 1.0 {
                return Err(format!("{name}: recovery_rate {rate} is not 1.0"));
            }
        }
        // The chaos arms only prove something if the link actually hurt.
        for name in ["chaos_flips", "chaos_cuts", "chaos_burst", "chaos_kill"] {
            let r = find(name)?;
            if int(r, name, "faults_injected")? == 0 {
                return Err(format!("{name}: chaos injected no faults"));
            }
            if int(r, name, "retries")? + int(r, name, "reconnects")? == 0 {
                return Err(format!("{name}: client never had to retry or reconnect"));
            }
        }
        // The kill arm must have crossed the supervisor's resurrection path.
        let kill = find("chaos_kill")?;
        if int(kill, "chaos_kill", "resurrections")? == 0 {
            return Err("chaos_kill: no session was resurrected".to_string());
        }
        // The shedding arm must have shed, and its client-observed wall
        // latency (Busy backoff included) must be a sane distribution.
        let shed = find("shed_pressure")?;
        if int(shed, "shed_pressure", "shed")? == 0 {
            return Err("shed_pressure: admission control never shed".to_string());
        }
        let mut latencies = std::collections::BTreeMap::new();
        for field in ["latency_p50_us", "latency_p90_us", "latency_p99_us"] {
            let v = shed
                .get(field)
                .ok_or_else(|| format!("shed_pressure: missing `{field}`"))?
                .as_f64()
                .map_err(|e| e.to_string())?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("shed_pressure: `{field}` = {v} is not positive"));
            }
            latencies.insert(field, v);
        }
        if latencies["latency_p50_us"] > latencies["latency_p90_us"]
            || latencies["latency_p90_us"] > latencies["latency_p99_us"]
        {
            return Err("shed_pressure: latency percentiles are not ordered".to_string());
        }
        // The drain arm must have checkpointed live sessions at shutdown.
        let drain = find("drain_shutdown")?;
        if int(drain, "drain_shutdown", "drains")? == 0 {
            return Err("drain_shutdown: shutdown drained no sessions".to_string());
        }
        Ok(())
    };
    match validate() {
        Ok(()) => {
            println!("check-resilience: {path} ok");
            0
        }
        Err(e) => {
            eprintln!("check-resilience: {path} invalid: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------------
// --flame: span profiles of the paper protocols
// ---------------------------------------------------------------------------

/// Runs the three paper protocols through the session engine with span
/// profiling on and renders each profile: the flame table (per-path calls,
/// sim/wall totals, self time) followed by the deterministic folded stacks
/// — the collapsed-flamegraph lines external flamegraph tooling consumes.
fn render_flame_profiles(n: usize, seed: u64) {
    use rfid_protocols::Session;
    let cfg = SimConfig::paper(seed).with_profile();
    let protocols: Vec<Box<dyn PollingProtocol>> = vec![
        Box::new(HppConfig::default().into_protocol()),
        Box::new(EhppConfig::default().into_protocol()),
        Box::new(TppConfig::default().into_protocol()),
    ];
    println!("span profiles (n = {n}, seed = {seed})\n");
    for protocol in &protocols {
        let pop = TagPopulation::sequential(n, |i| BitVec::from_value((i % 2) as u64, 1));
        let mut ctx = SimContext::new(pop, &cfg);
        let mut session = Session::open(protocol.as_ref(), &ctx);
        let end = session.run(&mut ctx);
        println!(
            "== {} ({}) ==",
            protocol.name(),
            if end.is_complete() {
                "complete"
            } else {
                "incomplete"
            }
        );
        print!("{}", render_flame(&ctx.profiler));
        println!("folded stacks (collapsed-flamegraph lines, value = self sim-µs):");
        for line in rfid_obs::folded_stacks(&ctx.profiler) {
            println!("  {line}");
        }
        println!();
    }
}

// ---------------------------------------------------------------------------
// --reconcile: the CI gate
// ---------------------------------------------------------------------------

fn run_reconcile_gate(n: usize, seed: u64) -> i32 {
    let protocols: Vec<Box<dyn PollingProtocol>> = vec![
        Box::new(HppConfig::default().into_protocol()),
        Box::new(EhppConfig::default().into_protocol()),
        Box::new(TppConfig::default().into_protocol()),
        Box::new(LowerBound),
        Box::new(FsaConfig::default().into_protocol()),
        Box::new(CppConfig::default().into_protocol()),
        Box::new(EcppConfig::default().into_protocol()),
        Box::new(CodedPollingConfig::default().into_protocol()),
        Box::new(MicConfig::default().into_protocol()),
        Box::new(QAlgorithmConfig::default().into_protocol()),
        Box::new(QueryTreeConfig::default().into_protocol()),
        Box::new(BinarySplitConfig::default().into_protocol()),
    ];
    let mut failures = 0usize;
    let mut check = |label: String, ctx: &SimContext| match reconcile(&ctx.log, &ctx.counters) {
        Ok(()) => println!("reconcile {label:<28} ok ({} events)", ctx.log.len()),
        Err(e) => {
            eprintln!("reconcile {label:<28} FAILED: {e}");
            failures += 1;
        }
    };

    let clean = SimConfig::paper(seed).with_trace();
    for protocol in &protocols {
        let ctx = traced_run(protocol.as_ref(), n, &clean);
        check(protocol.name().to_string(), &ctx);
    }

    // The fault-tolerant family must also reconcile mid-impairment, where
    // retransmission/loss/desync events carry the counter deltas.
    let fault = FaultModel::perfect()
        .with_downlink_loss(0.3)
        .with_corruption(0.3)
        .with_burst(GilbertElliott::new(0.1, 0.5, 0.0, 0.8));
    let impaired = SimConfig::paper(seed).with_trace().with_fault(fault);
    let fault_tolerant: Vec<Box<dyn PollingProtocol>> = vec![
        Box::new(HppConfig::default().into_protocol()),
        Box::new(EhppConfig::default().into_protocol()),
        Box::new(TppConfig::default().into_protocol()),
        Box::new(MicConfig::default().into_protocol()),
    ];
    for protocol in &fault_tolerant {
        let ctx = traced_run(protocol.as_ref(), n, &impaired);
        check(format!("{} (impaired)", protocol.name()), &ctx);
    }

    if failures == 0 {
        println!(
            "reconciliation gate: all {} runs ok",
            protocols.len() + fault_tolerant.len()
        );
        0
    } else {
        eprintln!("reconciliation gate: {failures} run(s) FAILED");
        1
    }
}
