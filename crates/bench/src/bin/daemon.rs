//! `rfid_daemon` — the reader-fleet daemon and its command-line client.
//!
//! Modes (any unrecognised flag prints the full usage text and exits 2;
//! parsing lives in `rfid_bench::cli` alongside the other binaries'):
//!
//! * `--serve` (default) — bind `--addr` (port 0 picks a free port, which
//!   is printed) and serve virtual reader sessions until a client sends
//!   the wire `Shutdown` command.
//! * `--client ADDR` — connect to a running daemon, open one session
//!   (`--protocol/--n/--info-bits/--seed`), stream its progress, and
//!   print the outcome with its trace digest.
//! * `--smoke` — the CI slice: an in-process daemon on port 0 serves one
//!   clean and one impaired session over real TCP, the impaired client
//!   shuts the fleet down, and any failure exits nonzero.
//! * `--chaos-smoke` — the resilience CI slice: a clean reference session,
//!   then the same session over a chaos-impaired link (seeded byte flips
//!   and connection cuts) driven by the checkpoint-resuming
//!   [`ResilientClient`]; the recovered outcome must be bit-identical to
//!   the reference and the session conservation law must hold.

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use rfid_bench::cli::{daemon_usage, parse_daemon_args, DaemonMode, DaemonOptions};
use rfid_daemon::{Daemon, DaemonClient, ResilientClient, RetryPolicy, RunEnd};
use rfid_system::{FaultModel, SimConfig};
use rfid_wire::{ChaosDirector, ChaosPlan, OpenRequest, SessionOutcome, Transport, WIRE_VERSION};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_daemon_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("rfid_daemon: {msg}\n");
            eprint!("{}", daemon_usage());
            std::process::exit(2);
        }
    };
    let result = match &opts.mode {
        DaemonMode::Serve => serve(&opts),
        DaemonMode::Client(addr) => client(addr, &opts),
        DaemonMode::Smoke => smoke(&opts),
        DaemonMode::ChaosSmoke => chaos_smoke(&opts),
    };
    if let Err(msg) = result {
        eprintln!("rfid_daemon: {msg}");
        std::process::exit(1);
    }
}

fn build_daemon(addr: &str, opts: &DaemonOptions) -> Result<Daemon, String> {
    let mut daemon = Daemon::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    if let Some(shards) = opts.shards {
        daemon = daemon.with_shards(shards);
    }
    if let Some(dir) = &opts.flight_dir {
        daemon = daemon.with_flight_dir(dir);
    }
    Ok(daemon)
}

fn serve(opts: &DaemonOptions) -> Result<(), String> {
    let daemon = build_daemon(&opts.addr, opts)?;
    println!("rfid_daemon: serving on {}", daemon.local_addr());
    daemon.run().map_err(|e| format!("serve failed: {e}"))
}

/// One served inventory, progress streamed, outcome printed.
fn drive_session<T: Transport>(
    client: &mut DaemonClient<T>,
    req: OpenRequest,
    quiet: bool,
) -> Result<SessionOutcome, String> {
    let session = client.open(req).map_err(|e| format!("open failed: {e}"))?;
    let outcome = match client
        .run(session, None, |steps, polls, rounds, clock_us| {
            if !quiet {
                println!(
                    "  progress: {steps} steps, {polls} polls, {rounds} rounds, {clock_us:.0} µs"
                );
            }
        })
        .map_err(|e| format!("run failed: {e}"))?
    {
        RunEnd::Done(outcome) => outcome,
        RunEnd::Paused { .. } => return Err("unbounded run paused".to_string()),
    };
    client
        .close(session)
        .map_err(|e| format!("close failed: {e}"))?;
    Ok(outcome)
}

fn client(addr: &str, opts: &DaemonOptions) -> Result<(), String> {
    let mut client =
        DaemonClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let (version, server) = client.hello().map_err(|e| format!("hello failed: {e}"))?;
    println!("connected to {server} (wire v{version}) at {addr}");
    let mut req = OpenRequest::new(&opts.protocol, opts.n, opts.info_bits, opts.seed);
    req.progress_every = Some((opts.n / 10).max(1));
    let outcome = drive_session(&mut client, req, false)?;
    println!(
        "{}: {} (passes {}, coverage {:.3}{})",
        opts.protocol,
        outcome.status,
        outcome.passes,
        outcome.coverage,
        outcome
            .trace_digest
            .map(|d| format!(", trace digest {d:#018x}"))
            .unwrap_or_default(),
    );
    println!("{}", outcome.report.to_pretty_string());
    Ok(())
}

/// The verify.sh slice: an in-process fleet on port 0, one clean and one
/// impaired session over real TCP, then a clean wire-driven shutdown.
fn smoke(opts: &DaemonOptions) -> Result<(), String> {
    let daemon = build_daemon("127.0.0.1:0", opts)?;
    let addr = daemon.local_addr();
    println!("smoke: daemon on {addr}");
    let server = std::thread::spawn(move || daemon.run());

    let check_complete = |label: &str, outcome: &SessionOutcome| -> Result<(), String> {
        if outcome.status != "complete" {
            return Err(format!(
                "{label} session ended {} ({})",
                outcome.status,
                outcome.cause.as_deref().unwrap_or("no cause"),
            ));
        }
        let digest = outcome
            .trace_digest
            .ok_or_else(|| format!("{label} session has no trace digest"))?;
        println!(
            "smoke: {label} session complete, {} passes, trace digest {digest:#018x}",
            outcome.passes
        );
        Ok(())
    };

    // Clean session on its own connection.
    let mut clean =
        DaemonClient::connect(addr).map_err(|e| format!("clean connect failed: {e}"))?;
    let (version, name) = clean.hello().map_err(|e| format!("hello failed: {e}"))?;
    if version != WIRE_VERSION {
        return Err(format!(
            "server speaks wire v{version}, expected v{WIRE_VERSION}"
        ));
    }
    println!("smoke: handshake ok ({name}, wire v{version})");
    let req = OpenRequest::new(&opts.protocol, opts.n, opts.info_bits, opts.seed);
    let outcome = drive_session(&mut clean, req, true)?;
    check_complete("clean", &outcome)?;
    drop(clean);

    // Impaired session on a second connection: loss + corruption live.
    let mut impaired =
        DaemonClient::connect(addr).map_err(|e| format!("impaired connect failed: {e}"))?;
    let mut req = OpenRequest::new(&opts.protocol, opts.n, opts.info_bits, opts.seed);
    req.config = Some(
        SimConfig::paper(opts.seed).with_trace().with_fault(
            FaultModel::perfect()
                .with_downlink_loss(0.2)
                .with_corruption(0.2),
        ),
    );
    let outcome = drive_session(&mut impaired, req, true)?;
    check_complete("impaired", &outcome)?;

    // Clean shutdown over the wire: the daemon must drain and return.
    impaired
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    drop(impaired);
    server
        .join()
        .map_err(|_| "daemon thread panicked".to_string())?
        .map_err(|e| format!("daemon failed: {e}"))?;
    println!("smoke: clean shutdown — OK");
    Ok(())
}

/// The resilience verify.sh slice: one seed, one chaos-impaired link.
/// Runs the session cleanly for a reference identity, then re-runs it
/// through a [`ResilientClient`] over a link with seeded byte flips and
/// connection cuts; the recovered outcome must be bit-identical and the
/// supervisor's session accounting must balance.
fn chaos_smoke(opts: &DaemonOptions) -> Result<(), String> {
    let daemon = build_daemon("127.0.0.1:0", opts)?.with_supervise_every(2);
    let addr = daemon.local_addr();
    let stop = daemon.stop_handle();
    let supervisor = daemon.supervisor();
    println!("chaos-smoke: daemon on {addr}");
    let server = std::thread::spawn(move || daemon.run());

    let identity = |outcome: &SessionOutcome| -> Result<(String, u64), String> {
        if outcome.status != "complete" {
            return Err(format!(
                "session ended {} ({})",
                outcome.status,
                outcome.cause.as_deref().unwrap_or("no cause"),
            ));
        }
        let digest = outcome
            .trace_digest
            .ok_or("session has no trace digest".to_string())?;
        Ok((outcome.report.to_string(), digest))
    };

    // Clean reference run over an unimpaired connection.
    let req = OpenRequest::new(&opts.protocol, opts.n, opts.info_bits, opts.seed);
    let mut clean =
        DaemonClient::connect(addr).map_err(|e| format!("clean connect failed: {e}"))?;
    let reference = identity(&drive_session(&mut clean, req.clone(), true)?)?;
    drop(clean);
    println!(
        "chaos-smoke: clean reference, trace digest {:#018x}",
        reference.1
    );

    // Same session over a hostile link: seeded flips plus rare cuts, a
    // finite fault budget so the link is eventually usable.
    let mut plan = ChaosPlan::flips(opts.seed ^ 0xC4A0_5EED, 0.0015, 25);
    plan.cut_rate = 0.0004;
    let director = ChaosDirector::new(plan);
    let dialer = director.clone();
    let policy = RetryPolicy::default()
        .with_verb_timeout(Duration::from_millis(500))
        .with_checkpoint_every(6)
        .with_backoff_us(200, 5_000)
        .with_max_attempts(64);
    let verb_timeout = policy.verb_timeout;
    let mut resilient = ResilientClient::new(
        move || {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_millis(10)))?;
            Ok(DaemonClient::new(dialer.transport(stream)).with_verb_timeout(verb_timeout))
        },
        policy,
    );
    let outcome = resilient
        .run_to_done(&req)
        .map_err(|e| format!("chaos run failed: {e}"))?;
    let recovered = identity(&outcome)?;
    println!(
        "chaos-smoke: {} faults injected, {} retries, {} reconnects",
        director.faults_injected(),
        resilient.retries(),
        resilient.reconnects(),
    );
    if recovered != reference {
        return Err("chaos recovery drifted from the clean reference".to_string());
    }
    if director.faults_injected() == 0 {
        return Err("the chaos plan never bit — tighten the rates".to_string());
    }

    stop.store(true, Ordering::Relaxed);
    server
        .join()
        .map_err(|_| "daemon thread panicked".to_string())?
        .map_err(|e| format!("daemon failed: {e}"))?;
    supervisor
        .reconcile()
        .map_err(|e| format!("session conservation violated: {e}"))?;
    println!("chaos-smoke: bit-identical recovery — OK");
    Ok(())
}
