//! Parallel Monte-Carlo execution of protocol runs.

use rfid_apps::info_collect::run_polling;
use rfid_protocols::{PollingProtocol, Report};
use rfid_workloads::Scenario;

/// A thread-safe factory producing fresh protocol instances — each worker
/// thread builds its own to keep the runs independent.
pub type ProtocolFactory<'a> = dyn Fn() -> Box<dyn PollingProtocol> + Sync + 'a;

/// Runs `runs` independent simulations of `factory()` over `scenario`
/// (reseeded per run from the scenario's master seed) and returns all
/// reports. Workers spread across available cores.
pub fn montecarlo(scenario: &Scenario, runs: u64, factory: &ProtocolFactory<'_>) -> Vec<Report> {
    assert!(runs >= 1);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(runs as usize);
    let chunk = runs.div_ceil(workers as u64);
    let mut out: Vec<Option<Report>> = vec![None; runs as usize];

    // std scoped threads (stable since 1.63): a panic in any worker
    // propagates when the scope joins, like crossbeam's `.expect` did.
    std::thread::scope(|scope| {
        for (w, slice) in out.chunks_mut(chunk as usize).enumerate() {
            let base = w as u64 * chunk;
            scope.spawn(move || {
                for (i, slot) in slice.iter_mut().enumerate() {
                    let run_seed = rfid_hash::split_seed(scenario.seed, base + i as u64);
                    let sc = scenario.clone().with_seed(run_seed);
                    let protocol = factory();
                    *slot = Some(run_polling(protocol.as_ref(), &sc).report);
                }
            });
        }
    });

    out.into_iter()
        .map(|r| r.expect("all runs filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_protocols::TppConfig;

    #[test]
    fn montecarlo_produces_the_requested_runs() {
        let scenario = Scenario::uniform(100, 1).with_seed(5);
        let reports = montecarlo(&scenario, 8, &|| {
            Box::new(TppConfig::default().into_protocol())
        });
        assert_eq!(reports.len(), 8);
        for r in &reports {
            assert_eq!(r.counters.polls, 100);
        }
        // Distinct seeds → runs differ.
        assert!(reports
            .windows(2)
            .any(|w| w[0].total_time != w[1].total_time));
    }

    #[test]
    fn montecarlo_is_reproducible() {
        let scenario = Scenario::uniform(50, 1).with_seed(9);
        let a = montecarlo(&scenario, 4, &|| {
            Box::new(TppConfig::default().into_protocol())
        });
        let b = montecarlo(&scenario, 4, &|| {
            Box::new(TppConfig::default().into_protocol())
        });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_time, y.total_time);
        }
    }
}
