//! Parallel Monte-Carlo execution of protocol runs.

use rfid_protocols::{PollingProtocol, Report};
use rfid_workloads::Scenario;

use crate::sweep::{Cell, SweepEngine};

/// A thread-safe factory producing fresh protocol instances — each worker
/// thread builds its own to keep the runs independent.
pub type ProtocolFactory<'a> = dyn Fn() -> Box<dyn PollingProtocol> + Sync + 'a;

/// Runs `runs` independent simulations of `factory()` over `scenario`
/// (run `r` reseeded via [`Scenario::for_run`], exactly as the sweep engine
/// seeds its grid cells) and returns all reports in run order. Workers
/// spread across available cores; a one-run block keeps every run its own
/// job, matching the old chunked scheduler's parallel width.
pub fn montecarlo(scenario: &Scenario, runs: u64, factory: &ProtocolFactory<'_>) -> Vec<Report> {
    assert!(runs >= 1);
    let cell = Cell::new("montecarlo", "", scenario.clone(), runs, factory);
    SweepEngine::new()
        .with_run_block(1)
        .run_cells(std::slice::from_ref(&cell))
        .pop()
        .expect("one cell in, one cell out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_protocols::TppConfig;

    #[test]
    fn montecarlo_produces_the_requested_runs() {
        let scenario = Scenario::uniform(100, 1).with_seed(5);
        let reports = montecarlo(&scenario, 8, &|| {
            Box::new(TppConfig::default().into_protocol())
        });
        assert_eq!(reports.len(), 8);
        for r in &reports {
            assert_eq!(r.counters.polls, 100);
        }
        // Distinct seeds → runs differ.
        assert!(reports
            .windows(2)
            .any(|w| w[0].total_time != w[1].total_time));
    }

    #[test]
    fn montecarlo_is_reproducible() {
        let scenario = Scenario::uniform(50, 1).with_seed(9);
        let a = montecarlo(&scenario, 4, &|| {
            Box::new(TppConfig::default().into_protocol())
        });
        let b = montecarlo(&scenario, 4, &|| {
            Box::new(TppConfig::default().into_protocol())
        });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_time, y.total_time);
        }
    }
}
