//! Argument parsing for the `repro`, `obs_report` and `rfid_daemon`
//! binaries.
//!
//! Parsing is a pure function from the argument list to either a validated
//! options struct ([`ReproOptions`] / [`ObsReportOptions`] /
//! [`DaemonOptions`]) or an error message, so both the usage-message paths
//! and the name validation are unit-testable without spawning the
//! binaries. All binaries follow the same conventions: `--help`-free
//! (usage prints on any bad flag), exit 2 on parse errors, and a
//! subcommand list in the usage text.

use std::path::PathBuf;

/// Every experiment `repro` knows, with its one-line description. The
/// order matches the paper's presentation and the usage message.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig1", "execution time vs polling-vector length (analytic)"),
    ("fig3", "HPP average vector length vs n            (Eq. 4)"),
    (
        "fig4",
        "optimal EHPP subset size vs l_c           (Theorem 1)",
    ),
    ("fig5", "EHPP vector length vs n for l_c in {100, 200, 400}"),
    (
        "fig8",
        "singleton probability mu(lambda)          (Eq. 12/13)",
    ),
    (
        "fig9",
        "TPP analytic vector length vs n           (Eqs. 6/8/11/15)",
    ),
    ("fig10", "simulated vector lengths: HPP / EHPP / TPP"),
    (
        "table1",
        "execution time, l = 1  bit   (CPP/HPP/EHPP/MIC/TPP/LB)",
    ),
    ("table2", "execution time, l = 16 bits"),
    ("table3", "execution time, l = 32 bits"),
    (
        "ablations",
        "design-choice ablations (TPP h-rule, EHPP subset, MIC k)",
    ),
    (
        "energy",
        "tag-side energy extension (semi-passive power model)",
    ),
    (
        "recovery",
        "chaos-soak recovery grid: convergence gate + overhead",
    ),
    (
        "session",
        "checkpoint/restore: crash-chaos bit-identity gate",
    ),
    ("all", "everything above"),
];

/// Validated `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproOptions {
    /// Which experiment to regenerate.
    pub experiment: String,
    /// Monte-Carlo repetitions for the simulated experiments.
    pub runs: u64,
    /// Population-sweep cap.
    pub max_n: u64,
    /// Sweep worker threads (`None` = one per core).
    pub workers: Option<usize>,
    /// Runs per sweep job (`None` = engine default).
    pub run_block: Option<u64>,
    /// Whether the persistent cell cache is enabled.
    pub cache: bool,
    /// Cache root override (`None` = `target/sweep-cache`).
    pub cache_dir: Option<PathBuf>,
    /// Where the `session` experiment writes its mid-run snapshot.
    pub checkpoint: Option<PathBuf>,
    /// A snapshot file to restore and finish instead of starting fresh.
    pub resume: Option<PathBuf>,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            experiment: "all".to_string(),
            runs: 20,
            max_n: 100_000,
            workers: None,
            run_block: None,
            cache: true,
            cache_dir: None,
            checkpoint: None,
            resume: None,
        }
    }
}

/// The full usage message, experiment list included.
pub fn usage() -> String {
    let mut out = String::from(
        "usage: repro [experiment] [--runs N] [--max-n N] [--workers N]\n\
         \x20            [--run-block N] [--no-cache] [--cache-dir PATH]\n\
         \x20            [--checkpoint PATH] [--resume PATH]\n\n\
         experiments:\n",
    );
    for (name, desc) in EXPERIMENTS {
        out.push_str(&format!("  {name:<10} {desc}\n"));
    }
    out.push_str(
        "\n--runs (default 20) controls Monte-Carlo repetitions; --max-n\n\
         (default 100000) caps the population sweep. --workers 1 is the\n\
         serial reference path (output is bit-identical to any width).\n\
         Cell results persist under target/sweep-cache/ unless --no-cache.\n\
         The session experiment kills a run mid-flight and proves the\n\
         restored run bit-identical; --checkpoint PATH writes the snapshot\n\
         of a killed run, --resume PATH restores one and finishes it.\n",
    );
    out
}

/// Parses `repro`'s arguments (without the program name). `Err` carries a
/// one-line message; callers print it with [`usage`] and exit nonzero.
pub fn parse_args(args: &[String]) -> Result<ReproOptions, String> {
    let mut opts = ReproOptions::default();
    let mut experiment: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => opts.runs = parse_value(it.next(), "--runs", |v| v >= 1)?,
            "--max-n" => opts.max_n = parse_value(it.next(), "--max-n", |v| v >= 1)?,
            "--workers" => {
                opts.workers = Some(parse_value(it.next(), "--workers", |v: usize| v >= 1)?)
            }
            "--run-block" => {
                opts.run_block = Some(parse_value(it.next(), "--run-block", |v| v >= 1)?)
            }
            "--no-cache" => opts.cache = false,
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(it.next().ok_or("--cache-dir needs a path")?))
            }
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(it.next().ok_or("--checkpoint needs a path")?))
            }
            "--resume" => {
                opts.resume = Some(PathBuf::from(it.next().ok_or("--resume needs a path")?))
            }
            other if !other.starts_with('-') => {
                if let Some(first) = &experiment {
                    return Err(format!(
                        "two experiments given ({first} and {other}); pick one"
                    ));
                }
                experiment = Some(other.to_string());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if let Some(exp) = experiment {
        if !EXPERIMENTS.iter().any(|(name, _)| *name == exp) {
            let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
            return Err(format!(
                "unknown experiment `{exp}`; expected one of: {}",
                names.join(", ")
            ));
        }
        opts.experiment = exp;
    }
    Ok(opts)
}

fn parse_value<T: std::str::FromStr + Copy>(
    value: Option<&String>,
    flag: &str,
    valid: impl Fn(T) -> bool,
) -> Result<T, String> {
    value
        .and_then(|v| v.parse().ok())
        .filter(|&v| valid(v))
        .ok_or_else(|| format!("{flag} needs a positive integer"))
}

/// Every `obs_report` mode, with its one-line description (the usage
/// message's subcommand list).
pub const OBS_MODES: &[(&str, &str)] = &[
    (
        "(default)",
        "worked examples + trace-derived metric summaries",
    ),
    (
        "--flame",
        "span profile of the paper protocols (flame table + folded stacks)",
    ),
    ("--reconcile", "trace→counters gate over every protocol"),
    (
        "--check-hotpath FILE",
        "validate a BENCH_hotpath.json report",
    ),
    (
        "--check-session FILE",
        "validate a BENCH_session.json report",
    ),
    (
        "--check-obsplane FILE",
        "validate a BENCH_obsplane.json report",
    ),
    ("--check-daemon FILE", "validate a BENCH_daemon.json report"),
    (
        "--check-resilience FILE",
        "validate a BENCH_resilience.json report",
    ),
];

/// Which `obs_report` mode was selected (modes are mutually exclusive).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// Render the worked examples and metric summaries.
    #[default]
    Examples,
    /// Render the span profile (flame table + folded stacks).
    Flame,
    /// Run the trace→counters reconciliation gate.
    Reconcile,
    /// Validate a `BENCH_hotpath.json` report.
    CheckHotpath(PathBuf),
    /// Validate a `BENCH_session.json` report.
    CheckSession(PathBuf),
    /// Validate a `BENCH_obsplane.json` report.
    CheckObsplane(PathBuf),
    /// Validate a `BENCH_daemon.json` report.
    CheckDaemon(PathBuf),
    /// Validate a `BENCH_resilience.json` report.
    CheckResilience(PathBuf),
}

/// Validated `obs_report` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsReportOptions {
    /// The selected mode.
    pub mode: ObsMode,
    /// Population size for the example/flame/reconcile runs.
    pub n: Option<usize>,
    /// Seed for the example/flame/reconcile runs.
    pub seed: Option<u64>,
}

/// The full `obs_report` usage message, mode list included.
pub fn obs_usage() -> String {
    let mut out = String::from(
        "usage: obs_report [mode] [--n N] [--seed S]\n\nmodes (mutually exclusive):\n",
    );
    for (name, desc) in OBS_MODES {
        out.push_str(&format!("  {name:<24} {desc}\n"));
    }
    out.push_str(
        "\n--n (default 200; the reconcile gate caps it at 120) sets the\n\
         population, --seed (default 1) the master seed. The check modes\n\
         validate bench reports written by `cargo bench` and exit nonzero\n\
         on any malformed or failing gate.\n",
    );
    out
}

/// Parses `obs_report`'s arguments (without the program name). `Err`
/// carries a one-line message; callers print it with [`obs_usage`] and
/// exit 2.
pub fn parse_obs_args(args: &[String]) -> Result<ObsReportOptions, String> {
    let mut opts = ObsReportOptions::default();
    let mut it = args.iter();
    let set_mode = |opts: &mut ObsReportOptions, mode: ObsMode| {
        if opts.mode != ObsMode::Examples {
            return Err(format!(
                "two modes given ({:?} and {mode:?}); pick one",
                opts.mode
            ));
        }
        opts.mode = mode;
        Ok(())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flame" => set_mode(&mut opts, ObsMode::Flame)?,
            "--reconcile" => set_mode(&mut opts, ObsMode::Reconcile)?,
            "--check-hotpath" => {
                let path = it.next().ok_or("--check-hotpath needs a file")?;
                set_mode(&mut opts, ObsMode::CheckHotpath(PathBuf::from(path)))?;
            }
            "--check-session" => {
                let path = it.next().ok_or("--check-session needs a file")?;
                set_mode(&mut opts, ObsMode::CheckSession(PathBuf::from(path)))?;
            }
            "--check-obsplane" => {
                let path = it.next().ok_or("--check-obsplane needs a file")?;
                set_mode(&mut opts, ObsMode::CheckObsplane(PathBuf::from(path)))?;
            }
            "--check-daemon" => {
                let path = it.next().ok_or("--check-daemon needs a file")?;
                set_mode(&mut opts, ObsMode::CheckDaemon(PathBuf::from(path)))?;
            }
            "--check-resilience" => {
                let path = it.next().ok_or("--check-resilience needs a file")?;
                set_mode(&mut opts, ObsMode::CheckResilience(PathBuf::from(path)))?;
            }
            "--n" => opts.n = Some(parse_value(it.next(), "--n", |v: usize| v >= 1)?),
            "--seed" => opts.seed = Some(parse_value(it.next(), "--seed", |_: u64| true)?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

/// Which `rfid_daemon` mode was selected (modes are mutually exclusive).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DaemonMode {
    /// Bind and serve until a client sends `Shutdown`.
    #[default]
    Serve,
    /// Connect to a running daemon and drive one session.
    Client(String),
    /// In-process end-to-end smoke: port 0, one clean + one impaired
    /// session over real TCP, clean shutdown.
    Smoke,
    /// In-process resilience smoke: a chaos-impaired resilient client
    /// must finish bit-identically to a clean in-process run.
    ChaosSmoke,
}

/// Validated `rfid_daemon` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonOptions {
    /// The selected mode.
    pub mode: DaemonMode,
    /// Bind address for `Serve` (port 0 picks a free port).
    pub addr: String,
    /// Accept shards for `Serve` (`None` = one per core).
    pub shards: Option<usize>,
    /// Flight-bundle directory override for `Serve`.
    pub flight_dir: Option<PathBuf>,
    /// Protocol the `Client`/`Smoke` session runs.
    pub protocol: String,
    /// Population size for the `Client`/`Smoke` session.
    pub n: u64,
    /// Bits of information per tag.
    pub info_bits: u64,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            mode: DaemonMode::Serve,
            addr: "127.0.0.1:0".to_string(),
            shards: None,
            flight_dir: None,
            protocol: "TPP".to_string(),
            n: 150,
            info_bits: 4,
            seed: 31,
        }
    }
}

/// The full `rfid_daemon` usage message.
pub fn daemon_usage() -> String {
    "usage: rfid_daemon [mode] [options]\n\n\
     modes (mutually exclusive; default --serve):\n\
     \x20 --serve             bind --addr and serve until a Shutdown command\n\
     \x20 --client ADDR       connect and run one session against a daemon\n\
     \x20 --smoke             in-process TCP smoke: one clean + one impaired\n\
     \x20                     session on port 0, then a clean shutdown\n\
     \x20 --chaos-smoke       in-process resilience smoke: a chaos-impaired\n\
     \x20                     link must finish bit-identically to a clean run\n\n\
     serve options:\n\
     \x20 --addr HOST:PORT    bind address (default 127.0.0.1:0)\n\
     \x20 --shards N          accept shards (default: one per core)\n\
     \x20 --flight-dir PATH   where postmortem flight bundles are written\n\n\
     session options (client/smoke):\n\
     \x20 --protocol NAME     protocol to serve (default TPP)\n\
     \x20 --n N               population size (default 150)\n\
     \x20 --info-bits N       information bits per tag (default 4)\n\
     \x20 --seed S            scenario seed (default 31)\n"
        .to_string()
}

/// Parses `rfid_daemon`'s arguments (without the program name). `Err`
/// carries a one-line message; callers print it with [`daemon_usage`] and
/// exit 2.
pub fn parse_daemon_args(args: &[String]) -> Result<DaemonOptions, String> {
    let mut opts = DaemonOptions::default();
    let mut mode: Option<DaemonMode> = None;
    let set_mode = |mode_slot: &mut Option<DaemonMode>, m: DaemonMode| {
        if let Some(first) = mode_slot {
            return Err(format!("two modes given ({first:?} and {m:?}); pick one"));
        }
        *mode_slot = Some(m);
        Ok(())
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serve" => set_mode(&mut mode, DaemonMode::Serve)?,
            "--client" => {
                let addr = it.next().ok_or("--client needs an address")?;
                set_mode(&mut mode, DaemonMode::Client(addr.clone()))?;
            }
            "--smoke" => set_mode(&mut mode, DaemonMode::Smoke)?,
            "--chaos-smoke" => set_mode(&mut mode, DaemonMode::ChaosSmoke)?,
            "--addr" => opts.addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--shards" => {
                opts.shards = Some(parse_value(it.next(), "--shards", |v: usize| v >= 1)?)
            }
            "--flight-dir" => {
                opts.flight_dir = Some(PathBuf::from(it.next().ok_or("--flight-dir needs a path")?))
            }
            "--protocol" => opts.protocol = it.next().ok_or("--protocol needs a name")?.clone(),
            "--n" => opts.n = parse_value(it.next(), "--n", |v| v >= 1)?,
            "--info-bits" => opts.info_bits = parse_value(it.next(), "--info-bits", |v| v >= 1)?,
            "--seed" => opts.seed = parse_value(it.next(), "--seed", |_: u64| true)?,
            other => return Err(format!("unknown option {other}")),
        }
    }
    opts.mode = mode.unwrap_or_default();
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ReproOptions, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_run_everything() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, ReproOptions::default());
        assert_eq!(opts.experiment, "all");
    }

    #[test]
    fn flags_parse_in_any_order() {
        let opts = parse(&[
            "--workers",
            "3",
            "table2",
            "--runs",
            "5",
            "--max-n",
            "2000",
            "--run-block",
            "4",
        ])
        .unwrap();
        assert_eq!(opts.experiment, "table2");
        assert_eq!(opts.runs, 5);
        assert_eq!(opts.max_n, 2_000);
        assert_eq!(opts.workers, Some(3));
        assert_eq!(opts.run_block, Some(4));
        assert!(opts.cache);
    }

    #[test]
    fn cache_flags_parse() {
        let opts = parse(&["--no-cache"]).unwrap();
        assert!(!opts.cache);
        let opts = parse(&["--cache-dir", "/tmp/x"]).unwrap();
        assert_eq!(opts.cache_dir, Some(PathBuf::from("/tmp/x")));
    }

    #[test]
    fn session_flags_parse() {
        let opts = parse(&["session", "--checkpoint", "/tmp/s.json"]).unwrap();
        assert_eq!(opts.experiment, "session");
        assert_eq!(opts.checkpoint, Some(PathBuf::from("/tmp/s.json")));
        assert_eq!(opts.resume, None);
        let opts = parse(&["session", "--resume", "/tmp/s.json"]).unwrap();
        assert_eq!(opts.resume, Some(PathBuf::from("/tmp/s.json")));
    }

    #[test]
    fn missing_or_bad_numbers_are_errors_not_panics() {
        for args in [
            &["--runs"][..],
            &["--runs", "zero"],
            &["--runs", "0"],
            &["--max-n", "-3"],
            &["--workers", "0"],
            &["--run-block", "x"],
            &["--cache-dir"],
            &["--checkpoint"],
            &["--resume"],
        ] {
            assert!(parse(args).is_err(), "{args:?} should be rejected");
        }
    }

    #[test]
    fn unknown_experiment_lists_the_valid_ones() {
        let err = parse(&["fig99"]).unwrap_err();
        assert!(err.contains("unknown experiment `fig99`"));
        assert!(err.contains("fig10"), "error names the experiments: {err}");
        assert!(err.contains("table3"));
    }

    #[test]
    fn unknown_option_and_double_experiment_are_errors() {
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
        assert!(parse(&["fig1", "fig3"]).unwrap_err().contains("pick one"));
    }

    #[test]
    fn usage_names_every_experiment() {
        let text = usage();
        for (name, _) in EXPERIMENTS {
            assert!(text.contains(name), "usage missing {name}");
        }
    }

    fn parse_obs(args: &[&str]) -> Result<ObsReportOptions, String> {
        parse_obs_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn obs_defaults_to_the_examples_mode() {
        let opts = parse_obs(&[]).unwrap();
        assert_eq!(opts.mode, ObsMode::Examples);
        assert_eq!(opts.n, None);
        assert_eq!(opts.seed, None);
    }

    #[test]
    fn obs_modes_and_knobs_parse_in_any_order() {
        let opts = parse_obs(&["--n", "50", "--flame", "--seed", "9"]).unwrap();
        assert_eq!(opts.mode, ObsMode::Flame);
        assert_eq!(opts.n, Some(50));
        assert_eq!(opts.seed, Some(9));
        let opts = parse_obs(&["--reconcile"]).unwrap();
        assert_eq!(opts.mode, ObsMode::Reconcile);
        let opts = parse_obs(&["--check-obsplane", "/tmp/r.json"]).unwrap();
        assert_eq!(
            opts.mode,
            ObsMode::CheckObsplane(PathBuf::from("/tmp/r.json"))
        );
        let opts = parse_obs(&["--check-hotpath", "a", "--seed", "2"]).unwrap();
        assert_eq!(opts.mode, ObsMode::CheckHotpath(PathBuf::from("a")));
        let opts = parse_obs(&["--check-session", "b"]).unwrap();
        assert_eq!(opts.mode, ObsMode::CheckSession(PathBuf::from("b")));
        let opts = parse_obs(&["--check-daemon", "target/BENCH_daemon.json"]).unwrap();
        assert_eq!(
            opts.mode,
            ObsMode::CheckDaemon(PathBuf::from("target/BENCH_daemon.json"))
        );
        let opts = parse_obs(&["--check-resilience", "target/BENCH_resilience.json"]).unwrap();
        assert_eq!(
            opts.mode,
            ObsMode::CheckResilience(PathBuf::from("target/BENCH_resilience.json"))
        );
    }

    #[test]
    fn obs_bad_flags_and_mode_conflicts_are_errors() {
        for args in [
            &["--n"][..],
            &["--n", "0"],
            &["--n", "lots"],
            &["--seed"],
            &["--seed", "x"],
            &["--check-hotpath"],
            &["--check-session"],
            &["--check-obsplane"],
            &["--check-daemon"],
            &["--check-resilience"],
            &["--frobnicate"],
        ] {
            assert!(parse_obs(args).is_err(), "{args:?} should be rejected");
        }
        let err = parse_obs(&["--flame", "--reconcile"]).unwrap_err();
        assert!(err.contains("pick one"), "{err}");
    }

    #[test]
    fn obs_usage_names_every_mode() {
        let text = obs_usage();
        for (name, _) in OBS_MODES {
            let flag = name.split_whitespace().next().unwrap();
            assert!(text.contains(flag), "obs usage missing {flag}");
        }
    }

    fn parse_daemon(args: &[&str]) -> Result<DaemonOptions, String> {
        parse_daemon_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn daemon_defaults_to_serving_a_free_port() {
        let opts = parse_daemon(&[]).unwrap();
        assert_eq!(opts, DaemonOptions::default());
        assert_eq!(opts.mode, DaemonMode::Serve);
        assert_eq!(opts.addr, "127.0.0.1:0");
        assert_eq!(opts.shards, None);
    }

    #[test]
    fn daemon_modes_and_knobs_parse_in_any_order() {
        let opts = parse_daemon(&["--shards", "4", "--serve", "--addr", "0.0.0.0:9000"]).unwrap();
        assert_eq!(opts.mode, DaemonMode::Serve);
        assert_eq!(opts.addr, "0.0.0.0:9000");
        assert_eq!(opts.shards, Some(4));
        let opts = parse_daemon(&[
            "--client",
            "localhost:9000",
            "--protocol",
            "hpp",
            "--n",
            "500",
            "--info-bits",
            "16",
            "--seed",
            "7",
        ])
        .unwrap();
        assert_eq!(opts.mode, DaemonMode::Client("localhost:9000".to_string()));
        assert_eq!(opts.protocol, "hpp");
        assert_eq!(opts.n, 500);
        assert_eq!(opts.info_bits, 16);
        assert_eq!(opts.seed, 7);
        let opts = parse_daemon(&["--smoke", "--flight-dir", "/tmp/f"]).unwrap();
        assert_eq!(opts.mode, DaemonMode::Smoke);
        assert_eq!(opts.flight_dir, Some(PathBuf::from("/tmp/f")));
        let opts = parse_daemon(&["--chaos-smoke", "--seed", "11"]).unwrap();
        assert_eq!(opts.mode, DaemonMode::ChaosSmoke);
        assert_eq!(opts.seed, 11);
    }

    #[test]
    fn daemon_bad_flags_and_mode_conflicts_are_errors() {
        for args in [
            &["--client"][..],
            &["--addr"],
            &["--shards"],
            &["--shards", "0"],
            &["--shards", "many"],
            &["--flight-dir"],
            &["--protocol"],
            &["--n", "0"],
            &["--info-bits", "x"],
            &["--seed"],
            &["--frobnicate"],
            &["serve"],
        ] {
            assert!(parse_daemon(args).is_err(), "{args:?} should be rejected");
        }
        let err = parse_daemon(&["--smoke", "--serve"]).unwrap_err();
        assert!(err.contains("pick one"), "{err}");
        let err = parse_daemon(&["--chaos-smoke", "--smoke"]).unwrap_err();
        assert!(err.contains("pick one"), "{err}");
        let err = parse_daemon(&["--client", "a:1", "--client", "b:2"]).unwrap_err();
        assert!(err.contains("pick one"), "{err}");
    }

    #[test]
    fn daemon_usage_names_every_mode_and_flag() {
        let text = daemon_usage();
        for flag in [
            "--serve",
            "--client",
            "--smoke",
            "--chaos-smoke",
            "--addr",
            "--shards",
            "--flight-dir",
            "--protocol",
            "--n",
            "--info-bits",
            "--seed",
        ] {
            assert!(text.contains(flag), "daemon usage missing {flag}");
        }
    }
}
