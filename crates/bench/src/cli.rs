//! Argument parsing for the `repro` binary.
//!
//! Parsing is a pure function from the argument list to either a validated
//! [`ReproOptions`] or an error message, so both the usage-message paths
//! and the experiment-name validation are unit-testable without spawning
//! the binary.

use std::path::PathBuf;

/// Every experiment `repro` knows, with its one-line description. The
/// order matches the paper's presentation and the usage message.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig1", "execution time vs polling-vector length (analytic)"),
    ("fig3", "HPP average vector length vs n            (Eq. 4)"),
    (
        "fig4",
        "optimal EHPP subset size vs l_c           (Theorem 1)",
    ),
    ("fig5", "EHPP vector length vs n for l_c in {100, 200, 400}"),
    (
        "fig8",
        "singleton probability mu(lambda)          (Eq. 12/13)",
    ),
    (
        "fig9",
        "TPP analytic vector length vs n           (Eqs. 6/8/11/15)",
    ),
    ("fig10", "simulated vector lengths: HPP / EHPP / TPP"),
    (
        "table1",
        "execution time, l = 1  bit   (CPP/HPP/EHPP/MIC/TPP/LB)",
    ),
    ("table2", "execution time, l = 16 bits"),
    ("table3", "execution time, l = 32 bits"),
    (
        "ablations",
        "design-choice ablations (TPP h-rule, EHPP subset, MIC k)",
    ),
    (
        "energy",
        "tag-side energy extension (semi-passive power model)",
    ),
    (
        "recovery",
        "chaos-soak recovery grid: convergence gate + overhead",
    ),
    (
        "session",
        "checkpoint/restore: crash-chaos bit-identity gate",
    ),
    ("all", "everything above"),
];

/// Validated `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproOptions {
    /// Which experiment to regenerate.
    pub experiment: String,
    /// Monte-Carlo repetitions for the simulated experiments.
    pub runs: u64,
    /// Population-sweep cap.
    pub max_n: u64,
    /// Sweep worker threads (`None` = one per core).
    pub workers: Option<usize>,
    /// Runs per sweep job (`None` = engine default).
    pub run_block: Option<u64>,
    /// Whether the persistent cell cache is enabled.
    pub cache: bool,
    /// Cache root override (`None` = `target/sweep-cache`).
    pub cache_dir: Option<PathBuf>,
    /// Where the `session` experiment writes its mid-run snapshot.
    pub checkpoint: Option<PathBuf>,
    /// A snapshot file to restore and finish instead of starting fresh.
    pub resume: Option<PathBuf>,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            experiment: "all".to_string(),
            runs: 20,
            max_n: 100_000,
            workers: None,
            run_block: None,
            cache: true,
            cache_dir: None,
            checkpoint: None,
            resume: None,
        }
    }
}

/// The full usage message, experiment list included.
pub fn usage() -> String {
    let mut out = String::from(
        "usage: repro [experiment] [--runs N] [--max-n N] [--workers N]\n\
         \x20            [--run-block N] [--no-cache] [--cache-dir PATH]\n\
         \x20            [--checkpoint PATH] [--resume PATH]\n\n\
         experiments:\n",
    );
    for (name, desc) in EXPERIMENTS {
        out.push_str(&format!("  {name:<10} {desc}\n"));
    }
    out.push_str(
        "\n--runs (default 20) controls Monte-Carlo repetitions; --max-n\n\
         (default 100000) caps the population sweep. --workers 1 is the\n\
         serial reference path (output is bit-identical to any width).\n\
         Cell results persist under target/sweep-cache/ unless --no-cache.\n\
         The session experiment kills a run mid-flight and proves the\n\
         restored run bit-identical; --checkpoint PATH writes the snapshot\n\
         of a killed run, --resume PATH restores one and finishes it.\n",
    );
    out
}

/// Parses `repro`'s arguments (without the program name). `Err` carries a
/// one-line message; callers print it with [`usage`] and exit nonzero.
pub fn parse_args(args: &[String]) -> Result<ReproOptions, String> {
    let mut opts = ReproOptions::default();
    let mut experiment: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => opts.runs = parse_value(it.next(), "--runs", |v| v >= 1)?,
            "--max-n" => opts.max_n = parse_value(it.next(), "--max-n", |v| v >= 1)?,
            "--workers" => {
                opts.workers = Some(parse_value(it.next(), "--workers", |v: usize| v >= 1)?)
            }
            "--run-block" => {
                opts.run_block = Some(parse_value(it.next(), "--run-block", |v| v >= 1)?)
            }
            "--no-cache" => opts.cache = false,
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(it.next().ok_or("--cache-dir needs a path")?))
            }
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(it.next().ok_or("--checkpoint needs a path")?))
            }
            "--resume" => {
                opts.resume = Some(PathBuf::from(it.next().ok_or("--resume needs a path")?))
            }
            other if !other.starts_with('-') => {
                if let Some(first) = &experiment {
                    return Err(format!(
                        "two experiments given ({first} and {other}); pick one"
                    ));
                }
                experiment = Some(other.to_string());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if let Some(exp) = experiment {
        if !EXPERIMENTS.iter().any(|(name, _)| *name == exp) {
            let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
            return Err(format!(
                "unknown experiment `{exp}`; expected one of: {}",
                names.join(", ")
            ));
        }
        opts.experiment = exp;
    }
    Ok(opts)
}

fn parse_value<T: std::str::FromStr + Copy>(
    value: Option<&String>,
    flag: &str,
    valid: impl Fn(T) -> bool,
) -> Result<T, String> {
    value
        .and_then(|v| v.parse().ok())
        .filter(|&v| valid(v))
        .ok_or_else(|| format!("{flag} needs a positive integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ReproOptions, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_run_everything() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, ReproOptions::default());
        assert_eq!(opts.experiment, "all");
    }

    #[test]
    fn flags_parse_in_any_order() {
        let opts = parse(&[
            "--workers",
            "3",
            "table2",
            "--runs",
            "5",
            "--max-n",
            "2000",
            "--run-block",
            "4",
        ])
        .unwrap();
        assert_eq!(opts.experiment, "table2");
        assert_eq!(opts.runs, 5);
        assert_eq!(opts.max_n, 2_000);
        assert_eq!(opts.workers, Some(3));
        assert_eq!(opts.run_block, Some(4));
        assert!(opts.cache);
    }

    #[test]
    fn cache_flags_parse() {
        let opts = parse(&["--no-cache"]).unwrap();
        assert!(!opts.cache);
        let opts = parse(&["--cache-dir", "/tmp/x"]).unwrap();
        assert_eq!(opts.cache_dir, Some(PathBuf::from("/tmp/x")));
    }

    #[test]
    fn session_flags_parse() {
        let opts = parse(&["session", "--checkpoint", "/tmp/s.json"]).unwrap();
        assert_eq!(opts.experiment, "session");
        assert_eq!(opts.checkpoint, Some(PathBuf::from("/tmp/s.json")));
        assert_eq!(opts.resume, None);
        let opts = parse(&["session", "--resume", "/tmp/s.json"]).unwrap();
        assert_eq!(opts.resume, Some(PathBuf::from("/tmp/s.json")));
    }

    #[test]
    fn missing_or_bad_numbers_are_errors_not_panics() {
        for args in [
            &["--runs"][..],
            &["--runs", "zero"],
            &["--runs", "0"],
            &["--max-n", "-3"],
            &["--workers", "0"],
            &["--run-block", "x"],
            &["--cache-dir"],
            &["--checkpoint"],
            &["--resume"],
        ] {
            assert!(parse(args).is_err(), "{args:?} should be rejected");
        }
    }

    #[test]
    fn unknown_experiment_lists_the_valid_ones() {
        let err = parse(&["fig99"]).unwrap_err();
        assert!(err.contains("unknown experiment `fig99`"));
        assert!(err.contains("fig10"), "error names the experiments: {err}");
        assert!(err.contains("table3"));
    }

    #[test]
    fn unknown_option_and_double_experiment_are_errors() {
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
        assert!(parse(&["fig1", "fig3"]).unwrap_err().contains("pick one"));
    }

    #[test]
    fn usage_names_every_experiment() {
        let text = usage();
        for (name, _) in EXPERIMENTS {
            assert!(text.contains(name), "usage missing {name}");
        }
    }
}
