//! Property-based protocol invariants: for *any* population size and seed,
//! each protocol must complete, never waste a slot, and satisfy its exact
//! reader-bit accounting identity.

use rfid_hash::prop::{check, Gen};
use rfid_hash::{prop_assert, prop_assert_eq};
use rfid_protocols::{EhppConfig, HppConfig, PollingProtocol, TppConfig};
use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

fn context(n: usize, seed: u64) -> SimContext {
    let pop = TagPopulation::sequential(n, |i| BitVec::from_value((i % 2) as u64, 1));
    SimContext::new(pop, &SimConfig::paper(seed))
}

fn draw_run(g: &mut Gen, max_n: usize) -> (usize, u64) {
    (g.len_in(1, max_n), g.u64())
}

#[test]
fn hpp_invariants() {
    check("hpp invariants", 64, |g| {
        let (n, seed) = draw_run(g, 300);
        let mut ctx = context(n, seed);
        let report = HppConfig::default().into_protocol().run(&mut ctx);
        ctx.assert_complete();
        prop_assert_eq!(report.counters.polls as usize, n);
        prop_assert_eq!(report.counters.empty_slots, 0);
        prop_assert_eq!(report.counters.collision_slots, 0);
        // Exact accounting: every reader bit is a round initiation (32), a
        // QueryRep prefix (4 per poll) or polling-vector payload.
        prop_assert_eq!(
            report.counters.reader_bits,
            32 * report.counters.rounds
                + report.counters.query_rep_bits
                + report.counters.vector_bits
        );
        prop_assert_eq!(report.counters.query_rep_bits, 4 * report.counters.polls);
        // Eq. (5): no vector exceeds ⌈log₂ n⌉ bits, so neither does the mean.
        let bound = rfid_analysis::hpp::upper_bound(n as u64) as f64;
        prop_assert!(report.mean_vector_bits() <= bound + 1e-9);
        Ok(())
    });
}

#[test]
fn tpp_invariants() {
    check("tpp invariants", 64, |g| {
        let (n, seed) = draw_run(g, 300);
        let mut ctx = context(n, seed);
        let report = TppConfig::default().into_protocol().run(&mut ctx);
        ctx.assert_complete();
        prop_assert_eq!(report.counters.polls as usize, n);
        prop_assert_eq!(report.counters.empty_slots, 0);
        prop_assert_eq!(report.counters.collision_slots, 0);
        prop_assert_eq!(
            report.counters.reader_bits,
            32 * report.counters.rounds
                + report.counters.query_rep_bits
                + report.counters.vector_bits
        );
        // The tree never transmits more bits than flat singleton broadcast
        // would: per round L ≤ h·m, so totals obey the same inequality
        // against an h ≤ ⌈log₂ n⌉ + 1 ceiling (TPP may use one extra bit).
        let h_cap = rfid_analysis::hpp::upper_bound(n as u64) as u64 + 1;
        prop_assert!(report.counters.vector_bits <= h_cap * report.counters.polls);
        Ok(())
    });
}

#[test]
fn ehpp_invariants() {
    check("ehpp invariants", 64, |g| {
        let (n, seed) = draw_run(g, 400);
        let mut ctx = context(n, seed);
        let report = EhppConfig::default().into_protocol().run(&mut ctx);
        ctx.assert_complete();
        prop_assert_eq!(report.counters.polls as usize, n);
        prop_assert_eq!(report.counters.empty_slots, 0);
        prop_assert_eq!(
            report.counters.reader_bits,
            32 * report.counters.rounds
                + 128 * report.counters.circles
                + report.counters.query_rep_bits
                + report.counters.vector_bits
        );
        Ok(())
    });
}

#[test]
fn tpp_time_equals_component_sum() {
    check("tpp time equals component sum", 64, |g| {
        // The clock total must equal the sum of its breakdown — across any
        // protocol execution path.
        let (n, seed) = draw_run(g, 200);
        let mut ctx = context(n, seed);
        let report = TppConfig::default().into_protocol().run(&mut ctx);
        let total = report.total_time.as_f64();
        let parts = report.breakdown.total().as_f64();
        prop_assert!((total - parts).abs() < 1e-6 * total.max(1.0));
        Ok(())
    });
}

#[test]
fn protocols_agree_on_who_gets_read() {
    check("protocols agree on who gets read", 64, |g| {
        // Different protocols, same population: all must read exactly the
        // same set (everyone) — no protocol may lose or duplicate a tag.
        let (n, seed) = draw_run(g, 150);
        for protocol in [
            &HppConfig::default().into_protocol() as &dyn PollingProtocol,
            &TppConfig::default().into_protocol(),
            &EhppConfig::default().into_protocol(),
        ] {
            let mut ctx = context(n, seed);
            protocol.run(&mut ctx);
            prop_assert!(
                ctx.population.all_asleep(),
                "{} missed tags",
                protocol.name()
            );
        }
        Ok(())
    });
}
