//! The Enhanced Hash Polling Protocol (Section III-D).
//!
//! HPP's polling vector grows as `⌈log₂ n⌉`; EHPP keeps it flat by splitting
//! the population into *circles* of `n*` tags and running HPP inside each:
//!
//! 1. The reader broadcasts an `l_c`-bit circle command `(f, F, r)`. Each
//!    active tag computes `H(r, id) mod F` and joins the circle only if its
//!    value is below the threshold — the probabilistic variant of Select
//!    that works under any ID distribution (a bit mask cannot carve out an
//!    exact count of tags from arbitrary IDs).
//! 2. With `F` = number of remaining tags and threshold `n*`, the expected
//!    circle size is `n*` — the Theorem-1 optimum `n* ∈ [l_c·ln2, e·l_c·ln2]`
//!    (shifted upward when per-round initiations are charged).
//! 3. HPP runs to exhaustion inside the circle; deselected tags then rejoin
//!    and the next circle starts.
//!
//! When the whole remaining population fits in one circle EHPP "just
//! executes HPP as-is" (the paper's `n = 100` observation), charging no
//! circle command.

use rfid_analysis::ehpp::optimal_subset_size_with_overhead;
use rfid_hash::TagHash;
use rfid_system::SimContext;

use crate::error::{PollingError, StallCause};
use crate::hpp::{run_hpp_rounds, HppConfig};
use crate::report::Report;
use crate::PollingProtocol;

/// EHPP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EhppConfig {
    /// Circle-command length `l_c` in bits (the paper sweeps 100–400 and
    /// simulates with 128).
    pub circle_cmd_bits: u64,
    /// Reader bits to initiate each HPP round inside a circle (paper: 32).
    pub round_init_bits: u64,
    /// Fixed subset size; `None` uses the Theorem-1 numeric optimum for the
    /// configured overheads.
    pub subset_size: Option<u64>,
    /// Whether polling vectors ride behind a 4-bit QueryRep.
    pub with_query_rep: bool,
    /// Safety cap on circles.
    pub max_circles: u64,
}

impl Default for EhppConfig {
    fn default() -> Self {
        EhppConfig {
            circle_cmd_bits: 128,
            round_init_bits: 32,
            subset_size: None,
            with_query_rep: true,
            max_circles: 1_000_000,
        }
    }
}

impl EhppConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> Ehpp {
        Ehpp { cfg: self }
    }

    /// The subset size the protocol will target.
    pub fn effective_subset_size(&self) -> u64 {
        self.subset_size
            .unwrap_or_else(|| {
                optimal_subset_size_with_overhead(self.circle_cmd_bits, self.round_init_bits)
            })
            .max(1)
    }
}

/// The Enhanced Hash Polling Protocol.
#[derive(Debug, Clone, Default)]
pub struct Ehpp {
    cfg: EhppConfig,
}

impl Ehpp {
    /// Creates EHPP with the given configuration.
    pub fn new(cfg: EhppConfig) -> Self {
        Ehpp { cfg }
    }
}

impl PollingProtocol for Ehpp {
    fn name(&self) -> &'static str {
        "EHPP"
    }

    fn try_run(&self, ctx: &mut SimContext) -> Result<Report, PollingError> {
        let n_star = self.cfg.effective_subset_size();
        let hpp_cfg = HppConfig {
            round_init_bits: self.cfg.round_init_bits,
            with_query_rep: self.cfg.with_query_rep,
            max_rounds: 1_000_000,
        };
        let mut circles = 0u64;
        while ctx.population.active_count() > 0 {
            circles += 1;
            if circles > self.cfg.max_circles {
                return Err(PollingError::stalled_with(
                    self.name(),
                    ctx,
                    StallCause::RoundCap,
                ));
            }
            let remaining = ctx.population.active_count() as u64;
            if remaining <= n_star {
                // Final (or only) circle: run HPP over everyone, no circle
                // command — EHPP degenerates to HPP on small populations.
                if let Err(cause) = run_hpp_rounds(ctx, &hpp_cfg) {
                    return Err(PollingError::stalled_with(self.name(), ctx, cause));
                }
                break;
            }
            // Probabilistic selection: tag joins iff H(r, id) mod F < n*.
            // Walk only the active bitset (O(remaining), not O(n)) into a
            // recycled scratch buffer — the selection sweep used to rescan
            // the full population every circle.
            let seed = ctx.draw_round_seed();
            let selector = TagHash::new(seed);
            let f_range = remaining;
            let mut deselected = ctx.take_scratch();
            let (ids_hi, ids_lo) = ctx.population.id_words();
            ctx.population.for_each_active(|handle| {
                if selector.modulo(ids_hi[handle], ids_lo[handle], f_range) >= n_star {
                    deselected.push(handle);
                }
            });
            let selected = remaining as usize - deselected.len();
            ctx.begin_circle(selected, self.cfg.circle_cmd_bits);
            if selected == 0 {
                // Nobody joined (rare); re-draw a selection seed. The circle
                // command was still spent on the air.
                ctx.recycle_scratch(deselected);
                continue;
            }
            for &handle in &deselected {
                ctx.population.deselect(handle);
            }
            ctx.recycle_scratch(deselected);
            let circle_result = run_hpp_rounds(ctx, &hpp_cfg);
            ctx.population.reselect_all();
            if let Err(cause) = circle_result {
                // Reselect first so the partial report sees the true
                // uncollected set, then surface the stall.
                return Err(PollingError::stalled_with(self.name(), ctx, cause));
            }
        }
        Ok(Report::from_context(self.name(), ctx))
    }
}

rfid_system::impl_json_struct!(EhppConfig {
    circle_cmd_bits,
    round_init_bits,
    subset_size,
    with_query_rep,
    max_circles,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpp::Hpp;
    use rfid_system::{BitVec, Channel, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64, cfg: EhppConfig) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = Ehpp::new(cfg).run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn reads_every_tag_exactly_once() {
        let (report, ctx) = run(2_000, 1, EhppConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 2_000);
        assert_eq!(report.counters.empty_slots, 0);
    }

    #[test]
    fn uses_multiple_circles_at_scale() {
        let (report, _) = run(5_000, 2, EhppConfig::default());
        assert!(
            report.counters.circles >= 5,
            "only {} circles for 5000 tags",
            report.counters.circles
        );
    }

    #[test]
    fn small_population_matches_hpp_cost() {
        // Tables I–III note: EHPP == HPP at n = 100 because a single circle
        // executes HPP as-is.
        let n = 100;
        let (ehpp, _) = run(n, 3, EhppConfig::default());
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(3));
        let hpp = Hpp::default().run(&mut ctx);
        assert_eq!(ehpp.total_time, hpp.total_time);
        assert_eq!(ehpp.counters.reader_bits, hpp.counters.reader_bits);
    }

    #[test]
    fn vector_length_is_flat_in_population_size() {
        // Fig. 10: EHPP stays ≈ 9 bits from 10⁴ to 10⁵ tags. Use the
        // overhead-inclusive metric the paper plots.
        let (small, _) = run(5_000, 4, EhppConfig::default());
        let (large, _) = run(20_000, 5, EhppConfig::default());
        let ws = small.mean_vector_bits_with_overhead();
        let wl = large.mean_vector_bits_with_overhead();
        assert!((ws - wl).abs() < 1.0, "w(5k) = {ws}, w(20k) = {wl}");
    }

    #[test]
    fn fig10_anchor_about_nine_bits() {
        let (report, _) = run(20_000, 6, EhppConfig::default());
        let w = report.mean_vector_bits_with_overhead();
        assert!((w - 9.0).abs() < 1.0, "w = {w}");
    }

    #[test]
    fn beats_hpp_at_scale() {
        let n = 20_000;
        let (ehpp, _) = run(n, 7, EhppConfig::default());
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(7));
        let hpp = Hpp::default().run(&mut ctx);
        assert!(
            ehpp.total_time < hpp.total_time,
            "EHPP {} not faster than HPP {}",
            ehpp.total_time,
            hpp.total_time
        );
    }

    #[test]
    fn fixed_subset_size_is_respected() {
        let cfg = EhppConfig {
            subset_size: Some(100),
            ..EhppConfig::default()
        };
        assert_eq!(cfg.effective_subset_size(), 100);
        let (report, ctx) = run(1_000, 8, cfg);
        ctx.assert_complete();
        // ~10 circles of ~100 tags (probabilistic selection wobbles).
        assert!(
            (5..=25).contains(&report.counters.circles),
            "{} circles",
            report.counters.circles
        );
    }

    #[test]
    fn completes_on_a_lossy_channel() {
        let pop = TagPopulation::sequential(500, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(9).with_channel(Channel::lossy(0.2));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = Ehpp::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = run(800, 10, EhppConfig::default());
        let (b, _) = run(800, 10, EhppConfig::default());
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.counters.circles, b.counters.circles);
    }

    #[test]
    fn selection_is_unbiased_in_expectation() {
        // Average first-circle size over seeds tracks n*.
        let n = 4_000usize;
        let n_star = EhppConfig::default().effective_subset_size();
        let selector_sizes: Vec<usize> = (0..20)
            .map(|s| {
                let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
                let ctx = SimContext::new(pop, &SimConfig::paper(s));
                let selector = TagHash::new(s * 31 + 1);
                ctx.population
                    .iter()
                    .filter(|(_, t)| selector.modulo(t.id.hi(), t.id.lo(), n as u64) < n_star)
                    .count()
            })
            .collect();
        let mean = selector_sizes.iter().sum::<usize>() as f64 / selector_sizes.len() as f64;
        assert!(
            (mean - n_star as f64).abs() < n_star as f64 * 0.15,
            "mean circle size {mean} vs target {n_star}"
        );
    }
}
