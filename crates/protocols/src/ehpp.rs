//! The Enhanced Hash Polling Protocol (Section III-D).
//!
//! HPP's polling vector grows as `⌈log₂ n⌉`; EHPP keeps it flat by splitting
//! the population into *circles* of `n*` tags and running HPP inside each:
//!
//! 1. The reader broadcasts an `l_c`-bit circle command `(f, F, r)`. Each
//!    active tag computes `H(r, id) mod F` and joins the circle only if its
//!    value is below the threshold — the probabilistic variant of Select
//!    that works under any ID distribution (a bit mask cannot carve out an
//!    exact count of tags from arbitrary IDs).
//! 2. With `F` = number of remaining tags and threshold `n*`, the expected
//!    circle size is `n*` — the Theorem-1 optimum `n* ∈ [l_c·ln2, e·l_c·ln2]`
//!    (shifted upward when per-round initiations are charged).
//! 3. HPP runs to exhaustion inside the circle; deselected tags then rejoin
//!    and the next circle starts.
//!
//! When the whole remaining population fits in one circle EHPP "just
//! executes HPP as-is" (the paper's `n = 100` observation), charging no
//! circle command.

use rfid_analysis::ehpp::optimal_subset_size_with_overhead;
use rfid_hash::TagHash;
use rfid_system::{Json, JsonError, SimContext, ToJson};

use crate::error::{StallCause, StallGuard};
use crate::hpp::{hpp_round, HppConfig};
use crate::session::{ProtocolStepper, StepDiscipline, StepOutcome};
use crate::PollingProtocol;

/// EHPP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EhppConfig {
    /// Circle-command length `l_c` in bits (the paper sweeps 100–400 and
    /// simulates with 128).
    pub circle_cmd_bits: u64,
    /// Reader bits to initiate each HPP round inside a circle (paper: 32).
    pub round_init_bits: u64,
    /// Fixed subset size; `None` uses the Theorem-1 numeric optimum for the
    /// configured overheads.
    pub subset_size: Option<u64>,
    /// Whether polling vectors ride behind a 4-bit QueryRep.
    pub with_query_rep: bool,
    /// Safety cap on circles.
    pub max_circles: u64,
}

impl Default for EhppConfig {
    fn default() -> Self {
        EhppConfig {
            circle_cmd_bits: 128,
            round_init_bits: 32,
            subset_size: None,
            with_query_rep: true,
            max_circles: 1_000_000,
        }
    }
}

impl EhppConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> Ehpp {
        Ehpp { cfg: self }
    }

    /// The subset size the protocol will target.
    pub fn effective_subset_size(&self) -> u64 {
        self.subset_size
            .unwrap_or_else(|| {
                optimal_subset_size_with_overhead(self.circle_cmd_bits, self.round_init_bits)
            })
            .max(1)
    }
}

/// The Enhanced Hash Polling Protocol.
#[derive(Debug, Clone, Default)]
pub struct Ehpp {
    cfg: EhppConfig,
}

impl Ehpp {
    /// Creates EHPP with the given configuration.
    pub fn new(cfg: EhppConfig) -> Self {
        Ehpp { cfg }
    }
}

impl PollingProtocol for Ehpp {
    fn name(&self) -> &'static str {
        "EHPP"
    }

    fn open_stepper(&self, _ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(EhppStepper::open(&self.cfg))
    }

    fn resume_stepper(
        &self,
        _ctx: &SimContext,
        state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        let mut stepper = EhppStepper::open(&self.cfg);
        stepper.circles = state.field("circles")?;
        let mode: String = state.field("mode")?;
        stepper.inner = match mode.as_str() {
            "select" => None,
            "inner" => Some(InnerCircle {
                final_drain: state.field("final_drain")?,
                rounds: state.field("rounds")?,
                guard: state.field("guard")?,
            }),
            other => return Err(JsonError(format!("unknown EHPP stepper mode '{other}'"))),
        };
        Ok(Box::new(stepper))
    }
}

/// The HPP run inside the current circle.
struct InnerCircle {
    /// The final circle runs over *everyone* (no selection happened), so
    /// there is nothing to reselect when it drains or stalls.
    final_drain: bool,
    /// Rounds spent inside this circle (each circle gets a fresh budget).
    rounds: u64,
    /// Per-circle stall guard (the legacy inner loop's).
    guard: StallGuard,
}

/// One step = one circle selection *or* one HPP round inside the current
/// circle. Self-limited: the circle cap and the per-circle round budget and
/// guard live here, below the driver's step granularity.
struct EhppStepper {
    cfg: EhppConfig,
    n_star: u64,
    hpp_cfg: HppConfig,
    circles: u64,
    /// `None` between circles (next step selects), `Some` inside one.
    inner: Option<InnerCircle>,
}

impl EhppStepper {
    fn open(cfg: &EhppConfig) -> Self {
        EhppStepper {
            cfg: *cfg,
            n_star: cfg.effective_subset_size(),
            hpp_cfg: HppConfig {
                round_init_bits: cfg.round_init_bits,
                with_query_rep: cfg.with_query_rep,
                max_rounds: 1_000_000,
            },
            circles: 0,
            inner: None,
        }
    }

    /// Opens the next circle: probabilistic selection, or the final drain
    /// when everyone left fits into one circle.
    fn select_step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        self.circles += 1;
        if self.circles > self.cfg.max_circles {
            return StepOutcome::Stalled(StallCause::RoundCap);
        }
        let remaining = ctx.population.active_count() as u64;
        if remaining <= self.n_star {
            // Final (or only) circle: run HPP over everyone, no circle
            // command — EHPP degenerates to HPP on small populations.
            self.inner = Some(InnerCircle {
                final_drain: true,
                rounds: 0,
                guard: StallGuard::default(),
            });
            return StepOutcome::Progressed;
        }
        // Probabilistic selection: tag joins iff H(r, id) mod F < n*.
        // Walk only the active bitset (O(remaining), not O(n)) into a
        // recycled scratch buffer — the selection sweep used to rescan
        // the full population every circle.
        let seed = ctx.draw_round_seed();
        let selector = TagHash::new(seed);
        let f_range = remaining;
        let n_star = self.n_star;
        let mut deselected = ctx.take_scratch();
        let (ids_hi, ids_lo) = ctx.population.id_words();
        ctx.population.for_each_active(|handle| {
            if selector.modulo(ids_hi[handle], ids_lo[handle], f_range) >= n_star {
                deselected.push(handle);
            }
        });
        let selected = remaining as usize - deselected.len();
        ctx.begin_circle(selected, self.cfg.circle_cmd_bits);
        if selected == 0 {
            // Nobody joined (rare); re-draw a selection seed next step. The
            // circle command was still spent on the air.
            ctx.recycle_scratch(deselected);
            return StepOutcome::Progressed;
        }
        for &handle in &deselected {
            ctx.population.deselect(handle);
        }
        ctx.recycle_scratch(deselected);
        self.inner = Some(InnerCircle {
            final_drain: false,
            rounds: 0,
            guard: StallGuard::default(),
        });
        StepOutcome::Progressed
    }

    /// One HPP round inside the current circle (or the circle-drained
    /// transition back to selection).
    fn inner_step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        let final_drain = self
            .inner
            .as_ref()
            .expect("inner_step requires an open circle")
            .final_drain;
        if ctx.population.active_count() == 0 {
            // Circle drained: deselected tags rejoin, next step selects.
            if !final_drain {
                ctx.population.reselect_all();
            }
            self.inner = None;
            return StepOutcome::Progressed;
        }
        let hpp_cfg = self.hpp_cfg;
        let circle = self.inner.as_mut().expect("checked above");
        circle.rounds += 1;
        if circle.rounds > hpp_cfg.max_rounds {
            // Reselect first so the partial report sees the true
            // uncollected set, then surface the stall.
            if !final_drain {
                ctx.population.reselect_all();
            }
            return StepOutcome::Stalled(StallCause::RoundCap);
        }
        hpp_round(ctx, &hpp_cfg);
        let stalled = self
            .inner
            .as_mut()
            .expect("checked above")
            .guard
            .no_progress(ctx);
        if stalled {
            if !final_drain {
                ctx.population.reselect_all();
            }
            return StepOutcome::Stalled(StallCause::NoProgress);
        }
        StepOutcome::Progressed
    }
}

impl ProtocolStepper for EhppStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::self_limited()
    }

    fn done(&self, ctx: &SimContext) -> bool {
        // Zero active tags mid-circle means the *circle* drained, not the
        // protocol: the deselected tags still have to rejoin.
        ctx.population.active_count() == 0
            && !matches!(
                self.inner,
                Some(InnerCircle {
                    final_drain: false,
                    ..
                })
            )
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        if self.inner.is_some() {
            self.inner_step(ctx)
        } else {
            self.select_step(ctx)
        }
    }

    fn state(&self) -> Json {
        let mut fields = vec![("circles".to_string(), self.circles.to_json())];
        match &self.inner {
            None => fields.push(("mode".to_string(), Json::str("select"))),
            Some(circle) => {
                fields.push(("mode".to_string(), Json::str("inner")));
                fields.push(("final_drain".to_string(), circle.final_drain.to_json()));
                fields.push(("rounds".to_string(), circle.rounds.to_json()));
                fields.push(("guard".to_string(), circle.guard.to_json()));
            }
        }
        Json::Obj(fields)
    }

    fn reset(&mut self, _ctx: &SimContext) {
        self.circles = 0;
        self.inner = None;
    }
}

rfid_system::impl_json_struct!(EhppConfig {
    circle_cmd_bits,
    round_init_bits,
    subset_size,
    with_query_rep,
    max_circles,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpp::Hpp;
    use crate::report::Report;
    use rfid_system::{BitVec, Channel, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64, cfg: EhppConfig) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = Ehpp::new(cfg).run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn reads_every_tag_exactly_once() {
        let (report, ctx) = run(2_000, 1, EhppConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 2_000);
        assert_eq!(report.counters.empty_slots, 0);
    }

    #[test]
    fn uses_multiple_circles_at_scale() {
        let (report, _) = run(5_000, 2, EhppConfig::default());
        assert!(
            report.counters.circles >= 5,
            "only {} circles for 5000 tags",
            report.counters.circles
        );
    }

    #[test]
    fn small_population_matches_hpp_cost() {
        // Tables I–III note: EHPP == HPP at n = 100 because a single circle
        // executes HPP as-is.
        let n = 100;
        let (ehpp, _) = run(n, 3, EhppConfig::default());
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(3));
        let hpp = Hpp::default().run(&mut ctx);
        assert_eq!(ehpp.total_time, hpp.total_time);
        assert_eq!(ehpp.counters.reader_bits, hpp.counters.reader_bits);
    }

    #[test]
    fn vector_length_is_flat_in_population_size() {
        // Fig. 10: EHPP stays ≈ 9 bits from 10⁴ to 10⁵ tags. Use the
        // overhead-inclusive metric the paper plots.
        let (small, _) = run(5_000, 4, EhppConfig::default());
        let (large, _) = run(20_000, 5, EhppConfig::default());
        let ws = small.mean_vector_bits_with_overhead();
        let wl = large.mean_vector_bits_with_overhead();
        assert!((ws - wl).abs() < 1.0, "w(5k) = {ws}, w(20k) = {wl}");
    }

    #[test]
    fn fig10_anchor_about_nine_bits() {
        let (report, _) = run(20_000, 6, EhppConfig::default());
        let w = report.mean_vector_bits_with_overhead();
        assert!((w - 9.0).abs() < 1.0, "w = {w}");
    }

    #[test]
    fn beats_hpp_at_scale() {
        let n = 20_000;
        let (ehpp, _) = run(n, 7, EhppConfig::default());
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(7));
        let hpp = Hpp::default().run(&mut ctx);
        assert!(
            ehpp.total_time < hpp.total_time,
            "EHPP {} not faster than HPP {}",
            ehpp.total_time,
            hpp.total_time
        );
    }

    #[test]
    fn fixed_subset_size_is_respected() {
        let cfg = EhppConfig {
            subset_size: Some(100),
            ..EhppConfig::default()
        };
        assert_eq!(cfg.effective_subset_size(), 100);
        let (report, ctx) = run(1_000, 8, cfg);
        ctx.assert_complete();
        // ~10 circles of ~100 tags (probabilistic selection wobbles).
        assert!(
            (5..=25).contains(&report.counters.circles),
            "{} circles",
            report.counters.circles
        );
    }

    #[test]
    fn completes_on_a_lossy_channel() {
        let pop = TagPopulation::sequential(500, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(9).with_channel(Channel::lossy(0.2));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = Ehpp::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = run(800, 10, EhppConfig::default());
        let (b, _) = run(800, 10, EhppConfig::default());
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.counters.circles, b.counters.circles);
    }

    #[test]
    fn selection_is_unbiased_in_expectation() {
        // Average first-circle size over seeds tracks n*.
        let n = 4_000usize;
        let n_star = EhppConfig::default().effective_subset_size();
        let selector_sizes: Vec<usize> = (0..20)
            .map(|s| {
                let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
                let ctx = SimContext::new(pop, &SimConfig::paper(s));
                let selector = TagHash::new(s * 31 + 1);
                ctx.population
                    .iter()
                    .filter(|(_, t)| selector.modulo(t.id.hi(), t.id.lo(), n as u64) < n_star)
                    .count()
            })
            .collect();
        let mean = selector_sizes.iter().sum::<usize>() as f64 / selector_sizes.len() as f64;
        assert!(
            (mean - n_star as f64).abs() < n_star as f64 * 0.15,
            "mean circle size {mean} vs target {n_star}"
        );
    }
}
