//! Typed non-convergence errors.
//!
//! On a sufficiently hostile channel (downlink jammed forever, a tag killed
//! mid-run) no polling protocol can finish. The old behaviour was an
//! `assert!` deep inside the round loop; the typed [`PollingError::Stalled`]
//! replaces it, carrying the partial [`Report`], the IDs the run failed to
//! collect, and *why* the loop stopped ([`StallCause`]) so the recovery
//! layer can tell a spent round budget from a genuinely dead channel.

use std::fmt;

use rfid_system::{SimContext, TagId};

use crate::report::Report;

/// How many consecutive rounds (or frames/sweeps) with zero successful
/// polls a protocol tolerates before declaring itself stalled. At a 50 %
/// per-poll failure rate the odds of 256 straight failed rounds are below
/// `0.5^256` — heavy-but-survivable loss never trips this, only genuinely
/// dead configurations (permanent jam, killed tag) do.
pub const DEFAULT_STALL_ROUNDS: u64 = 256;

/// Why a protocol loop stopped short of completion.
///
/// The distinction matters to the recovery layer: a [`StallCause::RoundCap`]
/// stall just means the per-pass budget ran out — another pass with a fresh
/// budget can still converge — while a [`StallCause::NoProgress`] stall
/// means hundreds of consecutive rounds polled nothing, which at any
/// survivable loss rate only happens on a dead channel or a killed tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// The stall guard tripped: consecutive no-progress rounds.
    NoProgress,
    /// The protocol's own round/sweep/slot cap was exceeded.
    RoundCap,
}

impl StallCause {
    /// Short human-readable label used in the `Stalled` message.
    pub fn label(&self) -> &'static str {
        match self {
            StallCause::NoProgress => "no progress",
            StallCause::RoundCap => "round cap",
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a protocol run did not complete.
#[derive(Debug, Clone)]
pub enum PollingError {
    /// The protocol stopped making progress (or hit its round cap) with
    /// tags still uncollected.
    Stalled {
        /// Everything collected (and spent) up to the stall.
        partial_report: Report,
        /// IDs of the tags never successfully read.
        uncollected: Vec<TagId>,
        /// What stopped the loop.
        cause: StallCause,
    },
}

impl PollingError {
    /// Builds a `Stalled` error from the context at the moment of the stall,
    /// attributed to the stall guard ([`StallCause::NoProgress`]).
    pub fn stalled(protocol: &str, ctx: &SimContext) -> Self {
        PollingError::stalled_with(protocol, ctx, StallCause::NoProgress)
    }

    /// Builds a `Stalled` error with an explicit cause.
    pub fn stalled_with(protocol: &str, ctx: &SimContext, cause: StallCause) -> Self {
        let uncollected = ctx
            .uncollected_handles()
            .into_iter()
            .map(|h| ctx.population.get(h).id)
            .collect();
        PollingError::Stalled {
            partial_report: Report::from_context(protocol, ctx),
            uncollected,
            cause,
        }
    }

    /// The partial report, regardless of variant.
    pub fn partial_report(&self) -> &Report {
        match self {
            PollingError::Stalled { partial_report, .. } => partial_report,
        }
    }

    /// The stall cause, regardless of variant.
    pub fn cause(&self) -> StallCause {
        match self {
            PollingError::Stalled { cause, .. } => *cause,
        }
    }
}

impl fmt::Display for PollingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PollingError::Stalled {
                partial_report,
                uncollected,
                cause,
            } => write!(
                f,
                "{} stalled: {} of {} tags uncollected after {} rounds \
                 ({} polls, {} collected, cause: {cause})",
                partial_report.protocol,
                uncollected.len(),
                partial_report.tags,
                partial_report.counters.rounds,
                partial_report.counters.polls,
                partial_report.tags - uncollected.len(),
            ),
        }
    }
}

impl std::error::Error for PollingError {}

/// Detects a stalled run by *lack of progress*: the guard trips after
/// [`DEFAULT_STALL_ROUNDS`] (or a caller-chosen number of) consecutive
/// rounds in which the poll counter did not advance. Progress of even one
/// tag resets the streak, so slow-but-converging runs never stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallGuard {
    cap: u64,
    last_polls: u64,
    streak: u64,
}

// The guard is part of a session's serialized driver state: a restored run
// must resume with the same idle-round streak or stall at a different round.
rfid_system::impl_json_struct!(StallGuard {
    cap,
    last_polls,
    streak
});

impl StallGuard {
    /// A guard tripping after `cap` consecutive no-progress rounds.
    pub fn new(cap: u64) -> Self {
        StallGuard {
            cap,
            last_polls: 0,
            streak: 0,
        }
    }

    /// Checks progress at a round boundary; `true` means the run stalled.
    /// Each idle round leaves a [`rfid_system::Event::StallTick`] in the
    /// trace so stalls are visible long before the guard trips.
    pub fn no_progress(&mut self, ctx: &mut SimContext) -> bool {
        if ctx.counters.polls > self.last_polls {
            self.last_polls = ctx.counters.polls;
            self.streak = 0;
            return false;
        }
        self.streak += 1;
        let streak = self.streak;
        ctx.trace(|| rfid_system::Event::StallTick { streak });
        self.streak >= self.cap
    }
}

impl Default for StallGuard {
    fn default() -> Self {
        StallGuard::new(DEFAULT_STALL_ROUNDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_system::{BitVec, SimConfig, TagPopulation};

    fn ctx(n: usize) -> SimContext {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        SimContext::new(pop, &SimConfig::paper(1))
    }

    #[test]
    fn stall_guard_trips_only_without_progress() {
        let mut c = ctx(3);
        let mut guard = StallGuard::new(3);
        assert!(!guard.no_progress(&mut c));
        assert!(!guard.no_progress(&mut c));
        c.poll_tag(1, true, 0);
        // Progress resets the streak.
        assert!(!guard.no_progress(&mut c));
        assert!(!guard.no_progress(&mut c));
        assert!(!guard.no_progress(&mut c));
        assert!(
            guard.no_progress(&mut c),
            "third consecutive idle round trips"
        );
    }

    #[test]
    fn stalled_error_carries_partial_state() {
        let mut c = ctx(3);
        c.poll_tag(1, true, 1);
        let err = PollingError::stalled("HPP", &c);
        let PollingError::Stalled {
            partial_report,
            uncollected,
            cause,
        } = &err;
        assert_eq!(partial_report.counters.polls, 1);
        assert_eq!(uncollected.len(), 2);
        assert_eq!(uncollected[0], c.population.get(0).id);
        assert_eq!(*cause, StallCause::NoProgress);
        let msg = err.to_string();
        assert!(msg.contains("HPP stalled: 2 of 3"), "{msg}");
        // Satellite fix: the panic path (run() formats this Display) now
        // names the collected count, stall round and cause too.
        assert!(msg.contains("1 collected"), "{msg}");
        assert!(msg.contains("0 rounds"), "{msg}");
        assert!(msg.contains("cause: no progress"), "{msg}");
    }

    #[test]
    fn stall_guard_round_trips_mid_streak() {
        let mut c = ctx(2);
        let mut guard = StallGuard::new(5);
        c.poll_tag(1, true, 0);
        assert!(!guard.no_progress(&mut c));
        assert!(!guard.no_progress(&mut c));
        let json = rfid_system::to_json_string(&guard);
        let back: StallGuard = rfid_system::from_json_str(&json).expect("parses");
        assert_eq!(back, guard, "streak and poll watermark must survive");
    }

    #[test]
    fn polling_error_is_a_std_error() {
        let c = ctx(1);
        let err = PollingError::stalled("CPP", &c);
        let dynerr: &dyn std::error::Error = &err;
        assert!(dynerr.to_string().contains("cause: no progress"));
    }

    #[test]
    fn stalled_with_records_the_round_cap_cause() {
        let c = ctx(2);
        let err = PollingError::stalled_with("TPP", &c, StallCause::RoundCap);
        assert_eq!(err.cause(), StallCause::RoundCap);
        assert!(err.to_string().contains("cause: round cap"));
    }
}
