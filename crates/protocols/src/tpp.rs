//! The Tree-based Polling Protocol (Section IV).
//!
//! HPP broadcasts every singleton index in full, so common prefixes go on
//! the air repeatedly. TPP removes that redundancy: per round it
//!
//! 1. **Picks indices** — broadcasts `(h, r)` with the Eq.-(15)-optimal `h`
//!    (load `λ = n'/2^h ∈ [ln 2, 2·ln 2)` maximizes the singleton
//!    probability `μ = λe^{-λ}`); every unread tag picks
//!    `H(r, id) mod 2^h`,
//! 2. **Builds the polling tree** — the reader inserts all singleton
//!    indices into a binary [`PollingTree`],
//! 3. **Polls by tree** — broadcasts the pre-order traversal split at leaf
//!    boundaries; every listening tag overlays each segment onto the tail
//!    of its `h`-bit array `A`, and the unique tag whose own index equals
//!    `A` replies.
//!
//! Each singleton therefore costs only its differential suffix; the
//! analysis (Eq. (16)) caps the average at `2 + 1/ln 2 ≈ 3.44` bits and the
//! simulation settles near 3.06 bits regardless of `n`.

use rfid_analysis::tpp::optimal_index_length;
use rfid_system::{Json, JsonError, SimContext};

use crate::hpp::singleton_indices;
use crate::session::{ProtocolStepper, StepDiscipline, StepOutcome};
use crate::tree::PollingTree;
use crate::PollingProtocol;

/// How the per-round index length `h` is chosen — the design choice
/// Section IV-D analyzes (and the `ablation_tpp_h` bench measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexRule {
    /// Eq. (15): keep the load `λ = n/2^h` in `[ln 2, 2·ln 2)` — maximizes
    /// the singleton probability and minimizes tree bits per read.
    #[default]
    Eq15Optimal,
    /// HPP's rule `2^{h-1} < n ≤ 2^h` (λ ∈ (1/2, 1]) — what TPP would do
    /// without the Section-IV-D analysis.
    HppRule,
}

/// TPP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TppConfig {
    /// Reader bits charged to initiate each round (broadcasting `(h, r)`).
    pub round_init_bits: u64,
    /// Whether each tree segment rides behind a 4-bit QueryRep.
    pub with_query_rep: bool,
    /// Index-length rule (Eq. (15) optimum by default).
    pub index_rule: IndexRule,
    /// Safety cap on rounds.
    pub max_rounds: u64,
}

impl Default for TppConfig {
    fn default() -> Self {
        TppConfig {
            round_init_bits: 32,
            with_query_rep: true,
            index_rule: IndexRule::Eq15Optimal,
            max_rounds: 1_000_000,
        }
    }
}

impl TppConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> Tpp {
        Tpp { cfg: self }
    }
}

/// The Tree-based Polling Protocol.
#[derive(Debug, Clone, Default)]
pub struct Tpp {
    cfg: TppConfig,
}

impl Tpp {
    /// Creates TPP with the given configuration.
    pub fn new(cfg: TppConfig) -> Self {
        Tpp { cfg }
    }
}

impl PollingProtocol for Tpp {
    fn name(&self) -> &'static str {
        "TPP"
    }

    fn open_stepper(&self, _ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(TppStepper { cfg: self.cfg })
    }

    fn resume_stepper(
        &self,
        _ctx: &SimContext,
        _state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        // Like HPP, all cross-round state is the context's active set.
        Ok(Box::new(TppStepper { cfg: self.cfg }))
    }
}

/// One step = one TPP round (index pick + tree build + tree broadcast).
struct TppStepper {
    cfg: TppConfig,
}

impl ProtocolStepper for TppStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::budgeted(self.cfg.max_rounds)
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        tpp_round(ctx, &self.cfg);
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(Vec::new())
    }

    fn reset(&mut self, _ctx: &SimContext) {}
}

/// Runs one TPP round; returns the number of tags successfully polled.
pub(crate) fn tpp_round(ctx: &mut SimContext, cfg: &TppConfig) -> usize {
    let n = ctx.population.active_count();
    debug_assert!(n > 0, "round over an empty population");
    let h = match cfg.index_rule {
        IndexRule::Eq15Optimal => optimal_index_length(n as u64),
        IndexRule::HppRule => rfid_analysis::hpp::index_length(n as u64),
    };
    let seed = ctx.draw_round_seed();
    ctx.begin_round(h, cfg.round_init_bits);

    if h == 0 {
        // One tag left: the bare QueryRep addresses it (0-bit vector).
        let handle = ctx
            .population
            .first_active()
            .expect("a nonempty round has an active tag");
        return ctx.poll_tag(0, cfg.with_query_rep, handle) as usize;
    }

    // Phase 1: picking indices (reader precomputes the singleton sift).
    let singles = singleton_indices(ctx, seed, h);
    if singles.is_empty() {
        // No singleton this round (possible at tiny n'); retry with a new
        // seed next round — only the round initiation was spent.
        ctx.recycle_singletons(singles);
        return 0;
    }

    // Phase 2: building the polling tree over singleton indices.
    let mut tree = PollingTree::new(h);
    for &(index, _) in &singles {
        tree.insert_value(index);
    }
    debug_assert_eq!(tree.leaf_count(), singles.len());

    // Phase 3: tree-based polling. Segments arrive in ascending-index order,
    // matching `singles` (already sorted by index). Every listening tag
    // overlays the segment on its array A; the tag whose index equals A
    // replies — the simulator addresses exactly that tag. The timing model
    // charges each segment by bit count alone, so only the lengths are
    // computed — into a recycled buffer, not one `BitVec` per poll.
    let mut seg_lens = ctx.take_scratch();
    tree.preorder_segment_lengths_into(&mut seg_lens);
    debug_assert_eq!(seg_lens.len(), singles.len());
    let mut polled = 0;
    for (&bits, &(_, tag)) in seg_lens.iter().zip(&singles) {
        if ctx.poll_tag(bits as u64, cfg.with_query_rep, tag) {
            polled += 1;
        }
    }
    ctx.recycle_scratch(seg_lens);
    ctx.recycle_singletons(singles);
    polled
}

rfid_system::impl_json_enum_units!(IndexRule {
    Eq15Optimal,
    HppRule
});
rfid_system::impl_json_struct!(TppConfig {
    round_init_bits,
    with_query_rep,
    index_rule,
    max_rounds
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpp::{tag_index, Hpp};
    use crate::report::Report;
    use rfid_system::{BitVec, Channel, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64, cfg: TppConfig) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = Tpp::new(cfg).run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn reads_every_tag_exactly_once() {
        let (report, ctx) = run(1_000, 1, TppConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 1_000);
        assert_eq!(report.counters.empty_slots, 0);
        assert_eq!(report.counters.collision_slots, 0);
    }

    #[test]
    fn mean_vector_is_about_three_bits() {
        // Fig. 10: TPP levels off at ≈ 3.06 bits regardless of n.
        for (n, seed) in [(2_000usize, 2u64), (10_000, 3)] {
            let (report, _) = run(n, seed, TppConfig::default());
            let w = report.mean_vector_bits();
            assert!((2.6..=3.5).contains(&w), "n = {n}: w = {w}");
        }
    }

    #[test]
    fn stays_below_the_analytic_ceiling() {
        // Eq. (16): w ≤ 3.44 bits. The simulated value must respect it
        // (the bound is per-round worst-case, so the average sits below).
        let (report, _) = run(5_000, 4, TppConfig::default());
        assert!(report.mean_vector_bits() <= rfid_analysis::tpp::global_bound());
    }

    #[test]
    fn vector_is_flat_in_population_size() {
        let (small, _) = run(1_000, 5, TppConfig::default());
        let (large, _) = run(20_000, 6, TppConfig::default());
        let diff = (small.mean_vector_bits() - large.mean_vector_bits()).abs();
        assert!(diff < 0.4, "w varies by {diff} across 20×");
    }

    #[test]
    fn far_fewer_vector_bits_than_hpp_same_seed() {
        let n = 5_000;
        let (tpp, _) = run(n, 7, TppConfig::default());
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(7));
        let hpp = Hpp::default().run(&mut ctx);
        assert!(
            tpp.counters.vector_bits * 3 < hpp.counters.vector_bits,
            "TPP {} vs HPP {} vector bits",
            tpp.counters.vector_bits,
            hpp.counters.vector_bits
        );
    }

    #[test]
    fn round_reads_more_than_half_like_the_analysis_says() {
        // With λ ∈ [ln2, 2·ln2) the per-round read fraction e^{-λ} lies in
        // (0.25, 0.5]; check the first round lands in that band.
        let pop = TagPopulation::sequential(8_192, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(8));
        let polled = tpp_round(&mut ctx, &TppConfig::default());
        let frac = polled as f64 / 8_192.0;
        assert!((0.22..=0.55).contains(&frac), "first-round fraction {frac}");
    }

    #[test]
    fn tree_equivalence_with_direct_singleton_broadcast() {
        // The tree broadcast must address exactly the tags HPP's sift would,
        // in ascending index order — replayed tag-side via decode_segments.
        let pop = TagPopulation::sequential(256, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(9));
        let seed = 0xABCD;
        let h = 9;
        let singles = singleton_indices(&mut ctx, seed, h);
        let tree =
            PollingTree::from_indices(h, &singles.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        let decoded = PollingTree::decode_segments(h, &tree.preorder_segments());
        let direct: Vec<u64> = singles.iter().map(|&(i, _)| i).collect();
        assert_eq!(decoded, direct);
        // And every decoded index matches the tag-side hash of its owner.
        for (idx, &(_, tag)) in decoded.iter().zip(&singles) {
            assert_eq!(*idx, tag_index(seed, ctx.population.get(tag).id, h));
        }
    }

    #[test]
    fn completes_on_a_lossy_channel() {
        let pop = TagPopulation::sequential(300, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(10).with_channel(Channel::lossy(0.25));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = Tpp::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 300);
        assert!(report.counters.lost_replies > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = run(700, 11, TppConfig::default());
        let (b, _) = run(700, 11, TppConfig::default());
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.counters.vector_bits, b.counters.vector_bits);
    }

    #[test]
    fn single_tag_costs_zero_vector_bits() {
        let (report, ctx) = run(1, 12, TppConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.vector_bits, 0);
    }

    #[test]
    fn trace_shows_tree_segments() {
        let pop = TagPopulation::sequential(64, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(13).with_trace());
        tpp_round(&mut ctx, &TppConfig::default());
        // Every tree segment goes on the air as a timestamped polling-vector
        // broadcast, and polls land strictly after the round start.
        use rfid_system::{BroadcastKind, Event};
        let events = ctx.log.events();
        let has_segment = events.iter().any(|e| {
            matches!(
                e.event,
                Event::ReaderBroadcast {
                    what: BroadcastKind::PollingVector,
                    ..
                }
            )
        });
        assert!(has_segment);
        let t_round = events
            .iter()
            .find(|e| matches!(e.event, Event::RoundStarted { .. }))
            .map(|e| e.at)
            .expect("round start traced");
        assert!(events
            .iter()
            .filter(|e| matches!(e.event, Event::TagPolled { .. }))
            .all(|e| e.at > t_round));
    }

    #[test]
    fn eq15_h_rule_beats_hpp_h_rule() {
        // The Section-IV-D ablation: with HPP's shorter index the tree has
        // fewer singletons per round and the per-read bit cost rises.
        let n = 5_000;
        let (optimal, _) = run(n, 15, TppConfig::default());
        let (hpp_rule, _) = run(
            n,
            15,
            TppConfig {
                index_rule: IndexRule::HppRule,
                ..TppConfig::default()
            },
        );
        assert!(
            optimal.total_time < hpp_rule.total_time,
            "Eq. (15) {} vs HPP-rule {}",
            optimal.total_time,
            hpp_rule.total_time
        );
    }

    #[test]
    fn beats_hpp_in_total_time_at_scale() {
        let n = 10_000;
        let (tpp, _) = run(n, 14, TppConfig::default());
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(14));
        let hpp = Hpp::default().run(&mut ctx);
        assert!(tpp.total_time < hpp.total_time);
    }
}
