//! # rfid-protocols — HPP, EHPP and TPP
//!
//! The contribution of *Fast RFID Polling Protocols* (ICPP 2016): three
//! polling protocols that interrogate every tag exactly once (no empty or
//! collision slots) while shrinking the per-tag *polling vector* far below
//! the conventional 96-bit tag ID.
//!
//! * [`hpp::Hpp`] — **Hash Polling Protocol.** Each round the reader
//!   broadcasts `(h, r)`; every unread tag picks the index
//!   `H(r, id) mod 2^h`. The reader — knowing all IDs — sifts out the
//!   *singleton* indices and broadcasts exactly those, each answered by its
//!   unique tag. Polling vector ≤ `⌈log₂ n⌉` bits.
//! * [`ehpp::Ehpp`] — **Enhanced HPP.** Splits the population into circles
//!   of the Theorem-1-optimal size so the vector length stays flat in `n`.
//! * [`tpp::Tpp`] — **Tree-based Polling Protocol.** Builds a binary
//!   [`tree::PollingTree`] over the singleton indices and broadcasts its
//!   pre-order traversal, so each tag costs only the *differential suffix*
//!   relative to the previous index — ~3 bits regardless of `n`.
//!
//! All three implement [`PollingProtocol`] over a
//! [`rfid_system::SimContext`] and produce a [`Report`].
//!
//! ```
//! use rfid_protocols::{PollingProtocol, TppConfig};
//! use rfid_system::{SimConfig, SimContext, TagPopulation, BitVec};
//!
//! let pop = TagPopulation::sequential(100, |_| BitVec::from_value(1, 1));
//! let mut ctx = SimContext::new(pop, &SimConfig::paper(1));
//! let report = TppConfig::default().into_protocol().run(&mut ctx);
//! assert_eq!(report.counters.polls, 100);
//! assert!(report.mean_vector_bits() < 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ehpp;
pub mod error;
pub mod hpp;
pub mod recovery;
pub mod report;
pub mod session;
pub mod tagside;
pub mod tpp;
pub mod tree;

pub use ehpp::{Ehpp, EhppConfig};
pub use error::{PollingError, StallCause, StallGuard, DEFAULT_STALL_ROUNDS};
pub use hpp::{Hpp, HppConfig};
pub use recovery::{run_recovered, RecoveryOutcome, RecoveryPolicy, RecoverySession};
pub use report::Report;
pub use session::{
    run_recovered_session, run_session, DegradeCause, ProtocolStepper, Session, SessionEnd,
    StepDiscipline, StepOutcome,
};
pub use tagside::{Broadcast, TagMachine};
pub use tpp::{IndexRule, Tpp, TppConfig};
pub use tree::PollingTree;

use rfid_system::{Json, JsonError, SimContext};

/// A polling protocol: drives a [`SimContext`] until every active tag has
/// been interrogated exactly once, and reports what it cost.
///
/// A protocol's run logic lives in its [`ProtocolStepper`] — a pure state
/// machine advanced one round/sweep/frame/slot at a time. The
/// [`session::Session`] driver owns everything around it (budgets, stall
/// guards, recovery passes, deadlines, checkpoints); `try_run`/`run` are
/// thin wrappers over a bare session.
pub trait PollingProtocol {
    /// Short display name (used in tables and reports).
    fn name(&self) -> &'static str;

    /// Opens a fresh stepper positioned at the start of the protocol.
    fn open_stepper(&self, ctx: &SimContext) -> Box<dyn ProtocolStepper>;

    /// Rebuilds a stepper from serialized [`ProtocolStepper::state`],
    /// validating the snapshot against the restored context.
    fn resume_stepper(
        &self,
        ctx: &SimContext,
        state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError>;

    /// Runs the protocol on `ctx`, reporting non-convergence as a typed
    /// error instead of panicking.
    ///
    /// Implementations must leave every tag asleep (verified by callers via
    /// [`SimContext::assert_complete`]) on a lossless channel; on a lossy or
    /// faulty channel they must retry lost tags until done, returning
    /// [`PollingError::Stalled`] — with the partial report and the
    /// uncollected IDs — once progress provably stops.
    fn try_run(&self, ctx: &mut SimContext) -> Result<Report, PollingError> {
        session::run_session(self, ctx)
    }

    /// Runs the protocol to completion, panicking on non-convergence (the
    /// pre-fault-injection contract; fine wherever the channel is benign).
    fn run(&self, ctx: &mut SimContext) -> Report {
        match self.try_run(ctx) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }
}
