//! Protocol run reports.

use std::fmt;

use rfid_c1g2::{Micros, TimeBreakdown};
use rfid_system::{Counters, SimContext};

/// What one protocol run cost — the metrics of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct Report {
    /// Protocol display name.
    pub protocol: String,
    /// Population size at the start of the run.
    pub tags: usize,
    /// Total execution time.
    pub total_time: Micros,
    /// Where the time went.
    pub breakdown: TimeBreakdown,
    /// Raw counters (bits, polls, rounds, …).
    pub counters: Counters,
}

impl Report {
    /// Snapshots a finished run.
    pub fn from_context(protocol: &str, ctx: &SimContext) -> Self {
        Report {
            protocol: protocol.to_string(),
            tags: ctx.population.len(),
            total_time: ctx.clock.total(),
            breakdown: *ctx.clock.breakdown(),
            counters: ctx.counters,
        }
    }

    /// Average polling-vector length `w` in bits (the paper's headline
    /// metric; excludes QueryRep prefixes and bulk broadcasts).
    pub fn mean_vector_bits(&self) -> f64 {
        self.counters.mean_vector_bits()
    }

    /// Average polling-vector length *including* amortized round/circle
    /// initiation and indicator overhead — every reader bit divided by the
    /// number of polls minus the fixed QueryRep prefixes. This is the `w`
    /// the Section-V simulation reports (it explicitly "counts this
    /// overhead").
    pub fn mean_vector_bits_with_overhead(&self) -> f64 {
        if self.counters.polls == 0 {
            return 0.0;
        }
        let payload = self
            .counters
            .reader_bits
            .saturating_sub(self.counters.query_rep_bits);
        payload as f64 / self.counters.polls as f64
    }

    /// Mean time per interrogated tag.
    pub fn time_per_tag(&self) -> Micros {
        if self.counters.polls == 0 {
            Micros::ZERO
        } else {
            self.total_time / self.counters.polls as f64
        }
    }

    /// Ratio of this run's time to another's (e.g. vs the lower bound).
    pub fn time_ratio(&self, other: &Report) -> f64 {
        self.total_time / other.total_time
    }

    /// Tag-side energy of this run under the given power model and link
    /// (tag bit time). See `rfid_analysis::energy` for the model.
    pub fn tag_energy(
        &self,
        params: &rfid_analysis::energy::EnergyParams,
        link: &rfid_c1g2::LinkParams,
    ) -> rfid_analysis::energy::EnergyReport {
        rfid_analysis::energy::energy_of_run(
            params,
            self.counters.tag_listen_us,
            self.counters.tag_bits,
            link.tag_bit,
            self.tags,
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} tags in {} ({} per tag)",
            self.protocol,
            self.tags,
            self.total_time,
            self.time_per_tag()
        )?;
        writeln!(
            f,
            "  polls {}  rounds {}  circles {}  mean vector {:.2} bits ({:.2} incl. overhead)",
            self.counters.polls,
            self.counters.rounds,
            self.counters.circles,
            self.mean_vector_bits(),
            self.mean_vector_bits_with_overhead()
        )?;
        let c = &self.counters;
        if c.lost_replies
            + c.downlink_losses
            + c.corrupted_replies
            + c.retransmissions
            + c.desync_recoveries
            > 0
        {
            writeln!(
                f,
                "  faults: {} lost replies  {} downlink losses  {} corrupted  {} retransmissions  {} desync recoveries",
                c.lost_replies,
                c.downlink_losses,
                c.corrupted_replies,
                c.retransmissions,
                c.desync_recoveries
            )?;
        }
        write!(f, "{}", self.breakdown)
    }
}

rfid_system::impl_json_struct!(Report {
    protocol,
    tags,
    total_time,
    breakdown,
    counters
});

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_system::{BitVec, SimConfig, TagPopulation};

    fn finished_ctx() -> SimContext {
        let pop = TagPopulation::sequential(2, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(1));
        ctx.poll_tag(3, true, 0);
        ctx.poll_tag(5, true, 1);
        ctx
    }

    #[test]
    fn report_snapshots_counters() {
        let ctx = finished_ctx();
        let r = Report::from_context("test", &ctx);
        assert_eq!(r.tags, 2);
        assert_eq!(r.counters.polls, 2);
        assert_eq!(r.mean_vector_bits(), 4.0);
        assert_eq!(r.total_time, ctx.clock.total());
    }

    #[test]
    fn overhead_variant_strips_query_reps() {
        let mut ctx = finished_ctx();
        // Simulate a 32-bit round-init broadcast on top.
        ctx.begin_round(3, 32);
        let r = Report::from_context("test", &ctx);
        // reader bits = 4+3 + 4+5 + 32 = 48; minus 8 QueryRep = 40; /2 = 20.
        assert_eq!(r.mean_vector_bits_with_overhead(), 20.0);
        // The plain metric ignores the broadcast.
        assert_eq!(r.mean_vector_bits(), 4.0);
    }

    #[test]
    fn time_per_tag_and_ratio() {
        let ctx = finished_ctx();
        let r = Report::from_context("a", &ctx);
        assert!((r.time_per_tag() * 2u64 - r.total_time).as_f64().abs() < 1e-9);
        assert!((r.time_ratio(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_metrics() {
        let r = Report::from_context("HPP", &finished_ctx());
        let s = r.to_string();
        assert!(s.contains("HPP"));
        assert!(s.contains("polls 2"));
    }

    #[test]
    fn tag_energy_integrates_listen_and_tx() {
        use rfid_analysis::energy::EnergyParams;
        use rfid_c1g2::LinkParams;
        let ctx = finished_ctx();
        let r = Report::from_context("x", &ctx);
        let e = r.tag_energy(&EnergyParams::semi_passive(), &LinkParams::paper());
        assert!(e.rx_mj > 0.0);
        // 2 bits transmitted at 25 µs/bit, 1.0 mW → 50 nJ = 5e-5 mJ.
        assert!((e.tx_mj - 5.0e-5).abs() < 1e-12);
        assert!(e.per_tag_uj() > 0.0);
    }
}
