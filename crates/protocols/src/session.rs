//! The resumable session engine: protocols as pure step state machines
//! under one driver that owns stalls, budgets, recovery and deadlines.
//!
//! Before this module every protocol carried its own copy of the control
//! loop — a round/sweep/slot budget, a [`StallGuard`], the
//! stall-to-[`PollingError`] conversion — and the recovery layer re-ran
//! `try_run` from the outside. A run was therefore an opaque black box: it
//! could not be paused, snapshotted, or resumed, and a crashed reader lost
//! the whole inventory.
//!
//! The session engine inverts that. A protocol exposes a
//! [`ProtocolStepper`] — a pure state machine advanced one *step* (round,
//! sweep, frame, query, or slot) at a time — and [`Session`] owns
//! everything around it:
//!
//! * **budget** — the per-pass step cap ([`StepDiscipline::max_steps`])
//!   and the no-progress [`StallGuard`], applied uniformly;
//! * **recovery** — the multi-pass backoff loop of
//!   [`RecoveryPolicy`](crate::RecoveryPolicy), folded into the same
//!   driver so a pass boundary is just another step boundary;
//! * **deadline** — an optional sim-time watchdog that converts an
//!   overrun into a typed [`SessionEnd::Degraded`] result instead of an
//!   unbounded run;
//! * **checkpoint/restore** — between any two steps the session (driver
//!   state + stepper state + full [`SimContext`]) serializes to JSON via
//!   [`Session::snapshot`] and restores into a fresh process image via
//!   [`Session::restore`], continuing **bit-identically**: same RNG
//!   stream, same trace, same report. The crash-chaos bench
//!   (`BENCH_session.json`) enforces this for every protocol.
//!
//! [`PollingProtocol::try_run`] is now a thin wrapper over
//! [`run_session`], and [`run_recovered`](crate::run_recovered) over a
//! policy-carrying session — the legacy control flow is reproduced
//! operation-for-operation, so all golden traces are unchanged.

use std::path::PathBuf;

use rfid_obs::FlightRecorder;
use rfid_system::{Json, JsonError, SimConfig, SimContext, ToJson};

use crate::error::{PollingError, StallCause, StallGuard};
use crate::recovery::RecoveryPolicy;
use crate::report::Report;
use crate::PollingProtocol;

/// What one [`ProtocolStepper::step`] reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step ran; the driver's budget and guard decide what's next.
    Progressed,
    /// The stepper's *internal* budget ran out (protocols whose cap lives
    /// below step granularity, e.g. a slot cap checked mid-frame).
    Stalled(StallCause),
}

/// How the driver should budget and guard a stepper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepDiscipline {
    /// Per-pass cap on driver steps; `None` when the stepper enforces its
    /// own cap (and reports it via [`StepOutcome::Stalled`]).
    pub max_steps: Option<u64>,
    /// Whether the driver runs a [`StallGuard`] across steps.
    pub guarded: bool,
}

impl StepDiscipline {
    /// A driver-budgeted, stall-guarded stepper (one step = one round or
    /// sweep; the common case).
    pub fn budgeted(max_steps: u64) -> Self {
        StepDiscipline {
            max_steps: Some(max_steps),
            guarded: true,
        }
    }

    /// No step cap, but driver-guarded against zero progress.
    pub fn guarded_unbounded() -> Self {
        StepDiscipline {
            max_steps: None,
            guarded: true,
        }
    }

    /// The stepper polices itself: internal cap, internal (or structural)
    /// progress guarantees. The driver only routes its stall reports.
    pub fn self_limited() -> Self {
        StepDiscipline {
            max_steps: None,
            guarded: false,
        }
    }
}

/// A polling protocol as a resumable state machine.
///
/// The contract that makes snapshots bit-identical:
///
/// * `step` performs exactly one unit of the legacy control loop (one
///   round, sweep, frame, query, or slot) with the same [`SimContext`]
///   operations in the same order — RNG draw order is part of the
///   protocol's determinism contract;
/// * all cross-step protocol state is covered by `state`/resume (via
///   [`PollingProtocol::resume_stepper`]); anything recomputed at
///   construction must be derivable from the context without touching
///   the RNG;
/// * `done`/`discipline`/`state` never mutate the context;
/// * `reset` re-initializes for a fresh recovery pass, RNG-free,
///   exactly as a newly opened stepper would start.
pub trait ProtocolStepper {
    /// How the driver should budget and guard this stepper.
    fn discipline(&self) -> StepDiscipline;

    /// Whether the protocol has finished (the legacy loop condition).
    fn done(&self, ctx: &SimContext) -> bool;

    /// Advances the protocol by one step.
    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome;

    /// Serializes the cross-step protocol state (an empty object for
    /// steppers whose state lives entirely in the context).
    fn state(&self) -> Json;

    /// Re-initializes for a fresh recovery pass (after the driver has
    /// reselected the population). Must not touch the RNG.
    fn reset(&mut self, ctx: &SimContext);
}

/// Why a session degraded instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeCause {
    /// The zero-progress circuit breaker opened (dead channel, killed tag).
    CircuitOpen,
    /// The recovery pass budget ran out.
    OutOfPasses,
    /// The sim-time deadline passed with tags still uncollected.
    Deadline,
}

impl DegradeCause {
    /// Short machine-friendly label (used in session reports).
    pub fn label(&self) -> &'static str {
        match self {
            DegradeCause::CircuitOpen => "circuit-open",
            DegradeCause::OutOfPasses => "out-of-passes",
            DegradeCause::Deadline => "deadline",
        }
    }
}

/// How a session ended.
#[derive(Debug, Clone)]
pub enum SessionEnd {
    /// Every tag was collected.
    Complete {
        /// The cumulative report.
        report: Report,
        /// Passes used (1 = no recovery was needed).
        passes: u64,
    },
    /// The protocol stalled and no recovery policy was installed.
    Stalled(PollingError),
    /// The session gave up with tags still uncollected — the circuit
    /// breaker opened, the pass budget ran out, or the deadline passed.
    Degraded {
        /// The cumulative partial report.
        report: Report,
        /// Fraction of the population collected, in `[0, 1]`.
        coverage: f64,
        /// Passes attempted.
        passes: u64,
        /// What stopped the session.
        cause: DegradeCause,
    },
}

impl SessionEnd {
    /// The (possibly partial) report, regardless of variant.
    pub fn report(&self) -> &Report {
        match self {
            SessionEnd::Complete { report, .. } => report,
            SessionEnd::Stalled(err) => err.partial_report(),
            SessionEnd::Degraded { report, .. } => report,
        }
    }

    /// Whether every tag was collected.
    pub fn is_complete(&self) -> bool {
        matches!(self, SessionEnd::Complete { .. })
    }
}

/// Runs `protocol` on `ctx` through a bare session (no recovery policy,
/// no deadline) — the engine behind [`PollingProtocol::try_run`].
pub fn run_session<P: PollingProtocol + ?Sized>(
    protocol: &P,
    ctx: &mut SimContext,
) -> Result<Report, PollingError> {
    let mut session = Session::open(protocol, ctx);
    match session.run(ctx) {
        SessionEnd::Complete { report, .. } => Ok(report),
        SessionEnd::Stalled(err) => Err(err),
        SessionEnd::Degraded { .. } => {
            unreachable!("a bare session has no policy or deadline to degrade through")
        }
    }
}

/// A live protocol session: one stepper under the driver.
///
/// Snapshotable between any two steps; restorable into a fresh process.
pub struct Session {
    name: &'static str,
    stepper: Box<dyn ProtocolStepper>,
    policy: Option<RecoveryPolicy>,
    deadline_us: Option<f64>,
    /// Driver steps taken in the current pass.
    steps: u64,
    /// The driver-side stall guard for the current pass.
    guard: StallGuard,
    /// Current pass number (1-based; 1 = the initial attempt).
    passes: u64,
    /// Consecutive zero-progress rounds accumulated across passes.
    idle_rounds: u64,
    /// Poll counter at the start of the current pass.
    polls_before: u64,
    /// Round counter at the start of the current pass.
    rounds_before: u64,
    /// Postmortem dumper plus the config it needs to bundle (flight
    /// recording is per-process, so restores start without one).
    flight: Option<(FlightRecorder, SimConfig)>,
    /// Whether the driver has opened its `session`/`pass` spans.
    spans_open: bool,
    /// Path of the most recent postmortem bundle this session dumped.
    last_postmortem: Option<PathBuf>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("protocol", &self.name)
            .field("policy", &self.policy)
            .field("deadline_us", &self.deadline_us)
            .field("steps", &self.steps)
            .field("passes", &self.passes)
            .field("idle_rounds", &self.idle_rounds)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Opens a session for `protocol` over `ctx`.
    pub fn open<P: PollingProtocol + ?Sized>(protocol: &P, ctx: &SimContext) -> Session {
        Session {
            name: protocol.name(),
            stepper: protocol.open_stepper(ctx),
            policy: None,
            deadline_us: None,
            steps: 0,
            guard: StallGuard::default(),
            passes: 1,
            idle_rounds: 0,
            polls_before: ctx.counters.polls,
            rounds_before: ctx.counters.rounds,
            flight: None,
            spans_open: false,
            last_postmortem: None,
        }
    }

    /// Installs a recovery policy: stalls become backoff-separated passes
    /// instead of terminal [`SessionEnd::Stalled`] results.
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Session {
        self.policy = Some(policy);
        self
    }

    /// Installs a sim-time deadline (µs on the C1G2 clock): once
    /// `ctx.clock.total()` reaches it, the session returns
    /// [`SessionEnd::Degraded`] with [`DegradeCause::Deadline`] at the
    /// next step boundary.
    pub fn with_deadline_us(mut self, deadline_us: f64) -> Session {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Installs a flight recorder: every non-complete end (`Stalled`, or
    /// `Degraded` via circuit-open / out-of-passes / deadline) dumps a
    /// postmortem bundle before the session returns. `config` must be the
    /// [`SimConfig`] the context was built with — it goes into the bundle
    /// so the failure reproduces from t = 0.
    pub fn with_flight_recorder(mut self, recorder: FlightRecorder, config: &SimConfig) -> Session {
        self.flight = Some((recorder, config.clone()));
        self
    }

    /// The protocol's display name.
    pub fn protocol_name(&self) -> &'static str {
        self.name
    }

    /// Path of the most recent postmortem bundle, if one was dumped.
    pub fn last_postmortem(&self) -> Option<&PathBuf> {
        self.last_postmortem.as_ref()
    }

    /// Driver steps taken in the current pass.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Current pass number (1-based).
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Runs the session to its end.
    pub fn run(&mut self, ctx: &mut SimContext) -> SessionEnd {
        loop {
            if let Some(end) = self.step_once(ctx) {
                return end;
            }
        }
    }

    /// Runs at most `max_steps` driver steps; `None` means the session is
    /// still live (and snapshotable), `Some` that it ended within budget.
    pub fn run_for(&mut self, ctx: &mut SimContext, max_steps: u64) -> Option<SessionEnd> {
        for _ in 0..max_steps {
            if let Some(end) = self.step_once(ctx) {
                return Some(end);
            }
        }
        None
    }

    /// One driver iteration: the legacy per-round control flow —
    /// loop-condition check, budget, step, guard — plus the deadline
    /// watchdog and (with a policy) the recovery transition. Terminal
    /// outcomes route through [`Session::finish_end`] for span closing and
    /// the flight recorder.
    fn step_once(&mut self, ctx: &mut SimContext) -> Option<SessionEnd> {
        let end = self.step_once_inner(ctx)?;
        Some(self.finish_end(ctx, end))
    }

    fn step_once_inner(&mut self, ctx: &mut SimContext) -> Option<SessionEnd> {
        if !self.spans_open && ctx.profiler.is_enabled() {
            ctx.span_enter("session");
            ctx.span_enter("pass");
            self.spans_open = true;
        }
        if self.stepper.done(ctx) {
            let report = Report::from_context(self.name, ctx);
            return Some(SessionEnd::Complete {
                report,
                passes: self.passes,
            });
        }
        if let Some(deadline) = self.deadline_us {
            if ctx.clock.total().as_f64() >= deadline {
                return Some(self.degraded_now(ctx, DegradeCause::Deadline));
            }
        }
        let discipline = self.stepper.discipline();
        self.steps += 1;
        let stalled = if discipline.max_steps.is_some_and(|cap| self.steps > cap) {
            Some(StallCause::RoundCap)
        } else {
            ctx.span_enter("round");
            let outcome = self.stepper.step(ctx);
            ctx.span_exit();
            match outcome {
                StepOutcome::Stalled(cause) => Some(cause),
                StepOutcome::Progressed => {
                    if discipline.guarded && self.guard.no_progress(ctx) {
                        Some(StallCause::NoProgress)
                    } else {
                        None
                    }
                }
            }
        };
        let cause = stalled?;
        self.on_stall(ctx, cause)
    }

    /// Terminal bookkeeping for a session end: dump the postmortem bundle
    /// on any non-complete end (DESIGN.md §14 trigger rules — the bundle
    /// captures the still-open span stack first), then close the driver's
    /// `pass` and `session` spans.
    fn finish_end(&mut self, ctx: &mut SimContext, end: SessionEnd) -> SessionEnd {
        match &end {
            SessionEnd::Complete { .. } => {}
            SessionEnd::Stalled(err) => {
                let report = err.partial_report();
                let uncollected = match err {
                    PollingError::Stalled { uncollected, .. } => uncollected.len(),
                };
                let coverage = if report.tags == 0 {
                    1.0
                } else {
                    (report.tags - uncollected) as f64 / report.tags as f64
                };
                self.dump_postmortem(ctx, "stalled", report, coverage);
            }
            SessionEnd::Degraded {
                report,
                coverage,
                cause,
                ..
            } => {
                self.dump_postmortem(ctx, cause.label(), report, *coverage);
            }
        }
        if self.spans_open {
            ctx.span_exit();
            ctx.span_exit();
            self.spans_open = false;
        }
        end
    }

    /// Writes a postmortem bundle if a flight recorder is installed. A
    /// dump failure never masks the session end (the run's result is worth
    /// more than its diagnostics); the path is kept for
    /// [`Session::last_postmortem`].
    fn dump_postmortem(&mut self, ctx: &SimContext, cause: &str, report: &Report, coverage: f64) {
        let Some((recorder, config)) = &self.flight else {
            return;
        };
        if let Ok(path) = recorder.dump(
            self.name,
            cause,
            config,
            ctx,
            report.to_json(),
            self.passes,
            coverage,
        ) {
            self.last_postmortem = Some(path);
        }
    }

    /// Handles a stall: terminal without a policy, otherwise the recovery
    /// layer's bookkeeping — breaker, backoff, reselect, fresh pass —
    /// reproduced operation-for-operation.
    fn on_stall(&mut self, ctx: &mut SimContext, cause: StallCause) -> Option<SessionEnd> {
        let err = PollingError::stalled_with(self.name, ctx, cause);
        let Some(policy) = self.policy else {
            return Some(SessionEnd::Stalled(err));
        };
        let PollingError::Stalled {
            partial_report,
            uncollected,
            cause,
        } = err;
        let progressed = ctx.counters.polls > self.polls_before;
        if progressed {
            self.idle_rounds = 0;
        } else {
            // Saturating: identical for live sessions (rounds only grow
            // within a pass), and keeps a tampered snapshot whose
            // `rounds_before` exceeds the live counter from underflowing.
            let pass_rounds = ctx
                .counters
                .rounds
                .saturating_sub(self.rounds_before)
                .max(1);
            self.idle_rounds += match cause {
                StallCause::NoProgress => pass_rounds.max(crate::DEFAULT_STALL_ROUNDS),
                StallCause::RoundCap => pass_rounds,
            };
        }
        let idle_cap = policy
            .zero_progress_limit
            .saturating_mul(crate::DEFAULT_STALL_ROUNDS);
        let out_of_passes = policy.max_passes != 0 && self.passes >= policy.max_passes;
        if out_of_passes || self.idle_rounds >= idle_cap {
            ctx.note_circuit_opened(self.passes, uncollected.len());
            let tags = partial_report.tags;
            let coverage = if tags == 0 {
                1.0
            } else {
                (tags - uncollected.len()) as f64 / tags as f64
            };
            return Some(SessionEnd::Degraded {
                report: partial_report,
                coverage,
                passes: self.passes,
                cause: if out_of_passes {
                    DegradeCause::OutOfPasses
                } else {
                    DegradeCause::CircuitOpen
                },
            });
        }
        // Exponential backoff with deterministic jitter, charged on the
        // C1G2 clock so recovery shows up in execution time.
        let base = policy.backoff_us(self.passes);
        let jitter = if base > 1 {
            ctx.rng.below(base / 2 + 1)
        } else {
            0
        };
        ctx.charge_recovery_backoff(self.passes, base + jitter);
        // Defensive: a protocol that stalls mid-circle may leave tags
        // deselected; reselection is idempotent and RNG-free.
        ctx.population.reselect_all();
        self.passes += 1;
        ctx.note_recovery_pass(self.passes, uncollected.len());
        // Fresh pass: new budget, new guard, re-initialized stepper — and
        // a fresh `pass` span, so per-pass costs stay attributed.
        self.polls_before = ctx.counters.polls;
        self.rounds_before = ctx.counters.rounds;
        self.steps = 0;
        self.guard = StallGuard::default();
        self.stepper.reset(ctx);
        if self.spans_open {
            ctx.span_exit();
            ctx.span_enter("pass");
        }
        None
    }

    /// A degraded end measured from the context right now (deadline path:
    /// no circuit event — the breaker did not open, time simply ran out).
    fn degraded_now(&self, ctx: &SimContext, cause: DegradeCause) -> SessionEnd {
        let report = Report::from_context(self.name, ctx);
        let uncollected = ctx.uncollected_handles().len();
        let tags = report.tags;
        let coverage = if tags == 0 {
            1.0
        } else {
            (tags - uncollected) as f64 / tags as f64
        };
        SessionEnd::Degraded {
            report,
            coverage,
            passes: self.passes,
            cause,
        }
    }

    /// Serializes the whole session — protocol name, config, context,
    /// driver state, stepper state — at the current step boundary.
    ///
    /// `config` must be the [`SimConfig`] the context was built with: the
    /// parts of the context that are pure functions of the config (link,
    /// channel, fault model) restore from it rather than being duplicated.
    pub fn snapshot(&self, ctx: &SimContext, config: &SimConfig) -> Json {
        Json::Obj(vec![
            ("protocol".to_string(), Json::str(self.name)),
            ("config".to_string(), config.to_json()),
            ("context".to_string(), ctx.snapshot()),
            (
                "driver".to_string(),
                Json::Obj(vec![
                    ("steps".to_string(), self.steps.to_json()),
                    ("guard".to_string(), self.guard.to_json()),
                    ("passes".to_string(), self.passes.to_json()),
                    ("idle_rounds".to_string(), self.idle_rounds.to_json()),
                    ("polls_before".to_string(), self.polls_before.to_json()),
                    ("rounds_before".to_string(), self.rounds_before.to_json()),
                    ("policy".to_string(), self.policy.to_json()),
                    ("deadline_us".to_string(), self.deadline_us.to_json()),
                ]),
            ),
            ("stepper".to_string(), self.stepper.state()),
        ])
    }

    /// Restores a session (and its context) from a [`Session::snapshot`]
    /// document, validating that it belongs to `protocol`.
    pub fn restore<P: PollingProtocol + ?Sized>(
        protocol: &P,
        doc: &Json,
    ) -> Result<(SimContext, Session), JsonError> {
        let name: String = doc.field("protocol")?;
        if name != protocol.name() {
            return Err(JsonError(format!(
                "snapshot belongs to protocol '{name}', cannot resume as '{}'",
                protocol.name()
            )));
        }
        let config: SimConfig = doc.field("config")?;
        let ctx_json = doc
            .get("context")
            .ok_or_else(|| JsonError("snapshot has no 'context'".to_string()))?;
        let ctx = SimContext::restore(&config, ctx_json)?;
        let driver = doc
            .get("driver")
            .ok_or_else(|| JsonError("snapshot has no 'driver'".to_string()))?;
        let passes: u64 = driver.field("passes")?;
        if passes == 0 {
            return Err(JsonError(
                "driver pass counter must be ≥ 1 (pass numbers are 1-based)".to_string(),
            ));
        }
        let stepper_json = doc
            .get("stepper")
            .ok_or_else(|| JsonError("snapshot has no 'stepper'".to_string()))?;
        let stepper = protocol.resume_stepper(&ctx, stepper_json)?;
        let session = Session {
            name: protocol.name(),
            stepper,
            policy: driver.field("policy")?,
            deadline_us: driver.field("deadline_us")?,
            steps: driver.field("steps")?,
            guard: driver.field("guard")?,
            passes,
            idle_rounds: driver.field("idle_rounds")?,
            polls_before: driver.field("polls_before")?,
            rounds_before: driver.field("rounds_before")?,
            flight: None,
            spans_open: false,
            last_postmortem: None,
        };
        Ok((ctx, session))
    }
}

/// Drives `protocol` under `policy` through a session — the engine behind
/// [`run_recovered`](crate::run_recovered).
pub fn run_recovered_session<P: PollingProtocol + ?Sized>(
    protocol: &P,
    policy: &RecoveryPolicy,
    ctx: &mut SimContext,
) -> SessionEnd {
    let mut session = Session::open(protocol, ctx).with_policy(*policy);
    session.run(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpp::HppConfig;
    use rfid_system::fault::FaultModel;
    use rfid_system::{BitVec, TagPopulation};

    fn population(n: usize) -> TagPopulation {
        TagPopulation::sequential(n, |_| BitVec::from_value(1, 1))
    }

    fn small_budget_hpp() -> crate::hpp::Hpp {
        HppConfig {
            max_rounds: 4,
            ..HppConfig::default()
        }
        .into_protocol()
    }

    #[test]
    fn profiling_does_not_perturb_the_run() {
        // Same seed, same faults, trace on — the only difference is the
        // profiler. Report and trace must be bit-identical (the obsplane
        // bench enforces the same at scale).
        let fault = FaultModel::perfect().with_downlink_loss(0.3);
        let run = |profile: bool| {
            let mut cfg = SimConfig::paper(17).with_fault(fault.clone()).with_trace();
            if profile {
                cfg = cfg.with_profile();
            }
            let mut ctx = SimContext::new(population(64), &cfg);
            let protocol = small_budget_hpp();
            let mut session =
                Session::open(&protocol, &ctx).with_policy(RecoveryPolicy::unbounded());
            let end = session.run(&mut ctx);
            (end.report().to_json().to_string(), ctx.log.to_jsonl())
        };
        let (report_off, trace_off) = run(false);
        let (report_on, trace_on) = run(true);
        assert_eq!(report_off, report_on, "report must not see the profiler");
        assert_eq!(trace_off, trace_on, "trace must not see the profiler");
    }

    #[test]
    fn profiled_session_records_the_span_hierarchy() {
        let cfg = SimConfig::paper(5).with_profile();
        let mut ctx = SimContext::new(population(32), &cfg);
        let protocol = HppConfig::default().into_protocol();
        let mut session = Session::open(&protocol, &ctx);
        let end = session.run(&mut ctx);
        assert!(end.is_complete());
        assert!(
            ctx.profiler.open_stack().is_empty(),
            "a complete session closes every span"
        );
        let paths: Vec<Vec<&str>> = (0..ctx.profiler.nodes().len())
            .map(|i| ctx.profiler.path(i))
            .collect();
        assert!(paths.contains(&vec!["session"]));
        assert!(paths.contains(&vec!["session", "pass"]));
        assert!(paths.contains(&vec!["session", "pass", "round"]));
        assert!(
            paths.contains(&vec!["session", "pass", "round", "poll"]),
            "the simulator's poll leaf nests under the driver's round"
        );
    }

    #[test]
    fn unprofiled_session_records_no_spans() {
        let cfg = SimConfig::paper(5);
        let mut ctx = SimContext::new(population(16), &cfg);
        let protocol = HppConfig::default().into_protocol();
        let end = Session::open(&protocol, &ctx).run(&mut ctx);
        assert!(end.is_complete());
        assert!(ctx.profiler.is_empty());
    }

    #[test]
    fn recovery_passes_reopen_the_pass_span() {
        let fault = FaultModel::perfect().with_downlink_loss(0.4);
        let cfg = SimConfig::paper(7).with_fault(fault).with_profile();
        let mut ctx = SimContext::new(population(100), &cfg);
        let protocol = small_budget_hpp();
        let mut session = Session::open(&protocol, &ctx).with_policy(RecoveryPolicy::unbounded());
        let end = session.run(&mut ctx);
        assert!(end.is_complete());
        let passes = session.passes();
        assert!(passes > 1, "a 4-round budget cannot finish pass 1");
        let pass_idx = (0..ctx.profiler.nodes().len())
            .find(|&i| ctx.profiler.path(i) == ["session", "pass"])
            .expect("pass span exists");
        assert_eq!(
            ctx.profiler.nodes()[pass_idx].calls,
            passes,
            "one pass span per recovery pass"
        );
        assert!(ctx.profiler.open_stack().is_empty());
    }

    #[test]
    fn degraded_session_dumps_a_parseable_postmortem() {
        let dir = std::env::temp_dir().join(format!("rfid-session-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A jammed downlink with a bounded policy degrades out-of-passes.
        let fault = FaultModel::perfect().with_downlink_loss(1.0);
        let cfg = SimConfig::paper(11)
            .with_fault(fault)
            .with_trace_ring(32)
            .with_profile();
        let mut ctx = SimContext::new(population(20), &cfg);
        let protocol = small_budget_hpp();
        let mut session = Session::open(&protocol, &ctx)
            .with_policy(RecoveryPolicy::unbounded().with_max_passes(3))
            .with_flight_recorder(rfid_obs::FlightRecorder::new(&dir), &cfg);
        let end = session.run(&mut ctx);
        let SessionEnd::Degraded {
            cause, coverage, ..
        } = &end
        else {
            panic!("a jammed downlink cannot complete");
        };
        assert_eq!(cause.label(), "out-of-passes");
        assert_eq!(*coverage, 0.0);

        let path = session.last_postmortem().expect("bundle was dumped");
        let bundle = rfid_obs::FlightBundle::load(path).expect("bundle parses");
        assert_eq!(bundle.cause, "out-of-passes");
        assert_eq!(bundle.protocol, "HPP");
        assert_eq!(bundle.config, cfg);
        assert_eq!(bundle.coverage, 0.0);
        assert_eq!(bundle.passes, 3);
        assert!(!bundle.events.is_empty(), "ring tail captured");
        assert_eq!(
            bundle.open_spans,
            ["session", "pass"],
            "the bundle captures where the run died"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stalled_session_without_policy_dumps_with_cause_stalled() {
        let dir = std::env::temp_dir().join(format!("rfid-session-stall-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fault = FaultModel::perfect().with_downlink_loss(1.0);
        let cfg = SimConfig::paper(13).with_fault(fault);
        let mut ctx = SimContext::new(population(10), &cfg);
        let protocol = small_budget_hpp();
        let mut session = Session::open(&protocol, &ctx)
            .with_flight_recorder(rfid_obs::FlightRecorder::new(&dir), &cfg);
        let end = session.run(&mut ctx);
        assert!(matches!(end, SessionEnd::Stalled(_)));
        let path = session.last_postmortem().expect("bundle was dumped");
        let bundle = rfid_obs::FlightBundle::load(path).expect("bundle parses");
        assert_eq!(bundle.cause, "stalled");
        assert!(!bundle.trace_enabled, "tracing was off; bundle still forms");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complete_session_never_dumps() {
        let dir = std::env::temp_dir().join(format!("rfid-session-clean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SimConfig::paper(3);
        let mut ctx = SimContext::new(population(8), &cfg);
        let protocol = HppConfig::default().into_protocol();
        let mut session = Session::open(&protocol, &ctx)
            .with_flight_recorder(rfid_obs::FlightRecorder::new(&dir), &cfg);
        let end = session.run(&mut ctx);
        assert!(end.is_complete());
        assert!(session.last_postmortem().is_none());
        assert!(!dir.exists(), "no bundle directory for a clean run");
    }
}
