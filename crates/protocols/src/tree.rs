//! The binary polling tree (Section IV-C).
//!
//! TPP inserts every singleton index into a binary tree rooted at a virtual
//! node: a `0` bit descends left, a `1` bit descends right, shared prefixes
//! share nodes. Broadcasting the *pre-order traversal* — one bit per node —
//! transmits every singleton index while sending each common prefix exactly
//! once. The traversal is split at leaf boundaries into segments
//! `Seq[1] … Seq[n']`; a tag overlays segment `j` onto the tail of its
//! `h`-bit array `A`, after which `A` equals the `j`-th singleton index (in
//! ascending order, since left precedes right).

use rfid_system::BitVec;

/// Arena-allocated binary polling tree.
///
/// The paper's Fig. 6/7 example — five 3-bit singleton indices become an
/// 11-bit broadcast instead of 15:
///
/// ```
/// use rfid_protocols::PollingTree;
///
/// let tree = PollingTree::from_indices(3, &[0b000, 0b010, 0b011, 0b101, 0b111]);
/// assert_eq!(tree.node_count(), 11);
/// let segments: Vec<String> =
///     tree.preorder_segments().iter().map(|s| s.to_string()).collect();
/// assert_eq!(segments, ["000", "10", "1", "101", "11"]);
/// // Tag-side replay recovers the indices in ascending order.
/// let decoded = PollingTree::decode_segments(3, &tree.preorder_segments());
/// assert_eq!(decoded, [0b000, 0b010, 0b011, 0b101, 0b111]);
/// ```
#[derive(Debug, Clone)]
pub struct PollingTree {
    /// `nodes[0]` is the virtual root; children index into the arena.
    nodes: Vec<Node>,
    height: u32,
    leaves: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct Node {
    /// `children[0]` = 0-bit (left), `children[1]` = 1-bit (right).
    children: [Option<u32>; 2],
}

impl PollingTree {
    /// An empty tree for `h`-bit indices.
    pub fn new(height: u32) -> Self {
        PollingTree {
            nodes: vec![Node::default()],
            height,
            leaves: 0,
        }
    }

    /// Builds a tree from `h`-bit index values (duplicates rejected).
    ///
    /// # Panics
    /// Panics if an index does not fit in `height` bits or appears twice —
    /// singleton indices are unique by construction, so either is a protocol
    /// bug.
    pub fn from_indices(height: u32, indices: &[u64]) -> Self {
        let mut tree = PollingTree::new(height);
        for &idx in indices {
            tree.insert_value(idx);
        }
        tree
    }

    /// Inserts the `height`-bit big-endian representation of `value`.
    pub fn insert_value(&mut self, value: u64) {
        assert!(
            self.height == 64 || value < (1u64 << self.height),
            "index {value} does not fit {} bits",
            self.height
        );
        self.descend((0..self.height).rev().map(|i| (value >> i) & 1 == 1));
    }

    /// Inserts an index given as bits (must have exactly `height` bits).
    pub fn insert_bits(&mut self, bits: &[bool]) {
        assert_eq!(
            bits.len(),
            self.height as usize,
            "index length {} != tree height {}",
            bits.len(),
            self.height
        );
        self.descend(bits.iter().copied());
    }

    /// Walks `height` bits from the root, creating nodes along the way.
    fn descend(&mut self, bits: impl Iterator<Item = bool>) {
        let mut at = 0u32;
        let mut created_leaf = false;
        let len = self.height as usize;
        for (depth, bit) in bits.enumerate() {
            let slot = bit as usize;
            at = match self.nodes[at as usize].children[slot] {
                Some(child) => child,
                None => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[at as usize].children[slot] = Some(child);
                    if depth + 1 == len {
                        created_leaf = true;
                    }
                    child
                }
            };
        }
        assert!(
            created_leaf || self.height == 0,
            "duplicate singleton index inserted"
        );
        if created_leaf {
            self.leaves += 1;
        }
    }

    /// Index length `h` the tree was built for.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of leaves = singleton indices stored.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Number of nodes excluding the virtual root — `L`, the total bits the
    /// reader transmits to broadcast the tree (Eq. (6)).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The pre-order traversal split at leaf boundaries: segment `j`
    /// contains the node bits strictly after leaf `j-1` up to and including
    /// leaf `j` (the paper's `Seq[j]`). Segments concatenated reproduce the
    /// full traversal; their total length is [`PollingTree::node_count`].
    pub fn preorder_segments(&self) -> Vec<BitVec> {
        let mut segments = Vec::with_capacity(self.leaves);
        let mut current = BitVec::new();
        // Iterative pre-order: visit 0-child before 1-child. The stack holds
        // (node, bit-that-led-here); the root contributes no bit.
        let mut stack: Vec<(u32, Option<bool>)> = vec![(0, None)];
        while let Some((at, via)) = stack.pop() {
            if let Some(bit) = via {
                current.push(bit);
            }
            let node = &self.nodes[at as usize];
            let is_leaf = node.children[0].is_none() && node.children[1].is_none();
            if is_leaf && via.is_some() {
                segments.push(std::mem::take(&mut current));
            }
            // Push right first so left pops first (pre-order, 0 before 1).
            if let Some(right) = node.children[1] {
                stack.push((right, Some(true)));
            }
            if let Some(left) = node.children[0] {
                stack.push((left, Some(false)));
            }
        }
        segments
    }

    /// The bit length of each pre-order segment, written into `out`
    /// (cleared first) — the reader's timing model charges segments by
    /// length alone, so the hot path never materializes the `BitVec`s that
    /// [`PollingTree::preorder_segments`] returns. Recursion depth is
    /// bounded by the tree height (≤ 64).
    pub fn preorder_segment_lengths_into(&self, out: &mut Vec<usize>) {
        out.clear();
        let mut current = 0usize;
        self.walk_lengths(0, false, &mut current, out);
    }

    fn walk_lengths(&self, at: u32, via_edge: bool, current: &mut usize, out: &mut Vec<usize>) {
        if via_edge {
            *current += 1;
        }
        let node = self.nodes[at as usize];
        if via_edge && node.children[0].is_none() && node.children[1].is_none() {
            out.push(*current);
            *current = 0;
        }
        if let Some(left) = node.children[0] {
            self.walk_lengths(left, true, current, out);
        }
        if let Some(right) = node.children[1] {
            self.walk_lengths(right, true, current, out);
        }
    }

    /// Tag-side decode: replays the broadcast segments against an `h`-bit
    /// array `A` and returns each reconstructed singleton index in broadcast
    /// order. This is exactly the per-tag update rule — tests use it to
    /// prove the tree broadcast is equivalent to broadcasting every
    /// singleton index in full.
    pub fn decode_segments(height: u32, segments: &[BitVec]) -> Vec<u64> {
        let mut a = BitVec::zeros(height as usize);
        segments
            .iter()
            .map(|seg| {
                a.overwrite_suffix(seg);
                a.to_value()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_hash::prop::check;
    use rfid_hash::{prop_assert, prop_assert_eq};

    /// The Fig. 6/7 worked example: indices 000, 010, 011, 101, 111.
    fn paper_tree() -> PollingTree {
        PollingTree::from_indices(3, &[0b000, 0b010, 0b011, 0b101, 0b111])
    }

    #[test]
    fn fig6_tree_shape() {
        let t = paper_tree();
        assert_eq!(t.leaf_count(), 5);
        // Nodes a…k = 11 (excluding the virtual root).
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn fig7_segments() {
        // Seq[1..5] = 000, 10, 1, 101, 11 — 11 bits instead of 15.
        let segs = paper_tree().preorder_segments();
        let strings: Vec<String> = segs.iter().map(|s| s.to_string()).collect();
        assert_eq!(strings, vec!["000", "10", "1", "101", "11"]);
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn fig7_tag_side_decode() {
        let segs = paper_tree().preorder_segments();
        let decoded = PollingTree::decode_segments(3, &segs);
        assert_eq!(decoded, vec![0b000, 0b010, 0b011, 0b101, 0b111]);
    }

    #[test]
    fn single_index_is_a_full_path() {
        let t = PollingTree::from_indices(5, &[0b10110]);
        assert_eq!(t.node_count(), 5);
        let segs = t.preorder_segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].to_string(), "10110");
    }

    #[test]
    fn full_tree_has_2h_plus1_minus_2_nodes() {
        let t = PollingTree::from_indices(3, &(0..8).collect::<Vec<_>>());
        assert_eq!(t.node_count(), 14);
        assert_eq!(t.leaf_count(), 8);
        // Every segment after the first is the differential suffix.
        let segs = t.preorder_segments();
        assert_eq!(segs[0].to_string(), "000");
        assert_eq!(segs[1].to_string(), "1");
        assert_eq!(segs[2].to_string(), "10");
    }

    #[test]
    fn leaves_decode_in_ascending_order() {
        let t = PollingTree::from_indices(4, &[9, 3, 14, 0, 7]);
        let decoded = PollingTree::decode_segments(4, &t.preorder_segments());
        assert_eq!(decoded, vec![0, 3, 7, 9, 14]);
    }

    #[test]
    fn node_count_respects_eq7_bound() {
        // L ≤ L⁺ = 2^{k+1} - 2 + (h-k)·m for any index set.
        let cases: Vec<(u32, Vec<u64>)> = vec![
            (4, vec![1, 2, 3]),
            (6, vec![0, 63, 31, 32]),
            (8, (0..50).map(|i| i * 5).collect()),
            (10, vec![512]),
        ];
        for (h, idxs) in cases {
            let t = PollingTree::from_indices(h, &idxs);
            let bound = rfid_analysis::tpp::l_plus(idxs.len() as u64, h);
            assert!(
                t.node_count() as f64 <= bound + 1e-9,
                "h={h}, m={}: L={} > L⁺={bound}",
                idxs.len(),
                t.node_count()
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate singleton")]
    fn duplicate_insert_rejected() {
        let mut t = PollingTree::new(3);
        t.insert_value(5);
        t.insert_value(5);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_index_rejected() {
        let mut t = PollingTree::new(3);
        t.insert_value(8);
    }

    /// Draws a sorted, distinct index set that fits an `h`-bit tree.
    fn index_set(g: &mut rfid_hash::prop::Gen, h: u32, max_len: usize) -> Vec<u64> {
        g.distinct_below(1u64 << h, 1, max_len)
    }

    #[test]
    fn prop_roundtrip_any_index_set() {
        check("polling tree round-trips any index set", 256, |g| {
            let h = g.u64_in(1, 13) as u32;
            let indices = index_set(g, h, 80);
            let t = PollingTree::from_indices(h, &indices);
            prop_assert_eq!(t.leaf_count(), indices.len());
            let decoded = PollingTree::decode_segments(h, &t.preorder_segments());
            // Broadcast order is ascending-index order.
            prop_assert_eq!(decoded, indices.clone());
            // Tree never transmits more than the naive h·m bits and never
            // exceeds the Eq. (7) bound.
            let naive = h as usize * indices.len();
            prop_assert!(t.node_count() <= naive);
            let bound = rfid_analysis::tpp::l_plus(indices.len() as u64, h);
            prop_assert!(t.node_count() as f64 <= bound + 1e-9);
            Ok(())
        });
    }

    #[test]
    fn prop_segment_lengths_sum_to_node_count() {
        check("tree segment lengths sum to node count", 256, |g| {
            let h = g.u64_in(1, 11) as u32;
            let indices = index_set(g, h, 60);
            let t = PollingTree::from_indices(h, &indices);
            let segs = t.preorder_segments();
            prop_assert_eq!(segs.len(), indices.len());
            let total: usize = segs.iter().map(|s| s.len()).sum();
            prop_assert_eq!(total, t.node_count());
            // The first segment is always a full h-bit index.
            prop_assert_eq!(segs[0].len(), h as usize);
            // The alloc-free length walk agrees with the materialized
            // segments bit for bit.
            let mut lens = Vec::new();
            t.preorder_segment_lengths_into(&mut lens);
            let want: Vec<usize> = segs.iter().map(|s| s.len()).collect();
            prop_assert_eq!(lens, want);
            Ok(())
        });
    }
}
