//! The recovery layer: turn faulted polling runs into completed inventories.
//!
//! PR 2 made non-convergence *typed* ([`PollingError::Stalled`]) but left it
//! terminal: the caller got a partial report and nobody re-polled the
//! `uncollected` tags. The hash-round structure of HPP/EHPP (and TPP's tree
//! descent) makes re-polling passes natural and cheap — polled tags are
//! asleep, so rerunning `try_run` on the same [`SimContext`] automatically
//! re-seeds the hash rounds (or re-descends the tree) over *only* the
//! uncollected remainder, and counters/clock accumulate in place so partial
//! reports merge by construction. [`RecoverySession`] wraps any
//! [`PollingProtocol`] with that loop, adding:
//!
//! * **bounded re-polling passes** — each pass is a full `try_run` with a
//!   fresh per-pass round budget,
//! * **sim-time exponential backoff with jitter** — drawn from the context's
//!   deterministic RNG and charged on the C1G2 clock (never the wall
//!   clock), so recovery overhead shows up in execution-time results,
//! * **a circuit breaker** — after [`RecoveryPolicy::max_passes`] passes, or
//!   when [`RecoveryPolicy::zero_progress_limit`] consecutive passes poll
//!   nothing, the session stops and returns a typed
//!   [`RecoveryOutcome::Degraded`] with an explicit coverage fraction
//!   instead of an error,
//! * **full observability** — `RecoveryPassStarted` / `BackoffWaited` /
//!   `CircuitOpened` trace events plus the `recovery_passes` and
//!   `recovery_backoff_us` counters, reconciled bit-for-bit by `rfid-obs`.
//!
//! Pass 1 is a bare `try_run`: no extra RNG draws, no events, no time — so
//! under [`rfid_system::FaultModel::perfect`] a recovered run is
//! bit-identical to an unwrapped one (the zero-cost property, enforced by a
//! workspace property test over all protocols).
//!
//! The convergence invariant the chaos-soak gate asserts: with unbounded
//! passes, coverage reaches 1.0 whenever loss < 1.0 — only a genuinely dead
//! configuration (permanent jam, killed tag) opens the circuit. The breaker
//! weighs evidence in *idle rounds*, not passes: a zero-progress
//! [`StallCause::RoundCap`] pass contributes only its small round budget
//! (the budget ran out; a fresh pass can still converge) while a
//! [`StallCause::NoProgress`] stall contributes a full
//! [`DEFAULT_STALL_ROUNDS`](crate::DEFAULT_STALL_ROUNDS) guard window, and
//! any progress resets the count — so at any survivable loss rate the odds
//! of accumulating the `zero_progress_limit × 256`-round threshold are
//! below `0.5^512`.

use rfid_system::SimContext;

use crate::report::Report;
use crate::PollingProtocol;

/// How a [`RecoverySession`] re-polls, backs off, and gives up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum polling passes (including the initial attempt); `0` means
    /// unbounded — the session runs until complete or until the
    /// zero-progress breaker opens.
    pub max_passes: u64,
    /// Backoff after the first stalled pass, in C1G2 microseconds. Doubles
    /// each further pass (exponential), capped by `max_backoff_us`.
    pub base_backoff_us: u64,
    /// Ceiling on one backoff interval, in microseconds.
    pub max_backoff_us: u64,
    /// Circuit breaker threshold, in units of stall-guard windows: the
    /// session gives up once `zero_progress_limit ·`
    /// [`DEFAULT_STALL_ROUNDS`](crate::DEFAULT_STALL_ROUNDS) consecutive
    /// *idle rounds* (rounds that polled nothing) accumulate across passes.
    /// A [`StallCause::NoProgress`] stall contributes a full guard window,
    /// so the default of `2` opens the circuit after two such passes; a
    /// zero-progress [`StallCause::RoundCap`] pass contributes only its
    /// (small) round budget — weak evidence, many passes needed — and any
    /// progress resets the count.
    pub zero_progress_limit: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_passes: 0,
            base_backoff_us: 1_000,
            max_backoff_us: 64_000,
            zero_progress_limit: 2,
        }
    }
}

impl RecoveryPolicy {
    /// Unbounded passes with the default backoff — drives any survivable
    /// fault configuration to completion.
    pub fn unbounded() -> Self {
        RecoveryPolicy::default()
    }

    /// Caps the number of passes (`0` = unbounded).
    pub fn with_max_passes(mut self, max_passes: u64) -> Self {
        self.max_passes = max_passes;
        self
    }

    /// Sets the backoff ladder: first interval and its ceiling.
    pub fn with_backoff(mut self, base_us: u64, max_us: u64) -> Self {
        self.base_backoff_us = base_us;
        self.max_backoff_us = max_us;
        self
    }

    /// Sets the circuit-breaker threshold, in stall-guard windows of
    /// consecutive idle rounds (see [`RecoveryPolicy::zero_progress_limit`]).
    ///
    /// # Panics
    /// Panics if `limit` is zero (the breaker would open before pass 1).
    pub fn with_zero_progress_limit(mut self, limit: u64) -> Self {
        assert!(limit > 0, "zero-progress limit must be positive");
        self.zero_progress_limit = limit;
        self
    }

    /// The backoff charged after stalled pass `pass` (1-based), before
    /// jitter: `base · 2^(pass-1)`, saturating, capped at `max_backoff_us`.
    pub fn backoff_us(&self, pass: u64) -> u64 {
        let shift = (pass - 1).min(32) as u32;
        self.base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us)
    }
}

rfid_system::impl_json_struct!(RecoveryPolicy {
    max_passes,
    base_backoff_us,
    max_backoff_us,
    zero_progress_limit,
});

/// How a recovered run ended.
#[derive(Debug, Clone)]
pub enum RecoveryOutcome {
    /// Every tag was collected.
    Complete {
        /// The cumulative report (all passes, backoff time included).
        report: Report,
        /// Passes used (1 = no recovery was needed).
        passes: u64,
    },
    /// The circuit breaker opened with tags still uncollected.
    Degraded {
        /// The cumulative partial report.
        report: Report,
        /// Fraction of the population collected, in `[0, 1]`.
        coverage: f64,
        /// Passes attempted before giving up.
        passes: u64,
    },
}

impl RecoveryOutcome {
    /// The (possibly partial) report, regardless of variant.
    pub fn report(&self) -> &Report {
        match self {
            RecoveryOutcome::Complete { report, .. } => report,
            RecoveryOutcome::Degraded { report, .. } => report,
        }
    }

    /// Collected fraction: `1.0` for a complete run.
    pub fn coverage(&self) -> f64 {
        match self {
            RecoveryOutcome::Complete { .. } => 1.0,
            RecoveryOutcome::Degraded { coverage, .. } => *coverage,
        }
    }

    /// Passes used.
    pub fn passes(&self) -> u64 {
        match self {
            RecoveryOutcome::Complete { passes, .. } => *passes,
            RecoveryOutcome::Degraded { passes, .. } => *passes,
        }
    }

    /// Whether every tag was collected.
    pub fn is_complete(&self) -> bool {
        matches!(self, RecoveryOutcome::Complete { .. })
    }
}

/// A recovery-wrapped protocol run: re-polls the uncollected remainder after
/// every stall, with backoff, until complete or the circuit breaker opens.
#[derive(Debug, Clone)]
pub struct RecoverySession<P> {
    protocol: P,
    policy: RecoveryPolicy,
}

impl<P: PollingProtocol> RecoverySession<P> {
    /// Wraps `protocol` under `policy`.
    pub fn new(protocol: P, policy: RecoveryPolicy) -> Self {
        RecoverySession { protocol, policy }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The active policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Drives the wrapped protocol to completion (or degradation) on `ctx`.
    ///
    /// Pass 1 is a bare [`PollingProtocol::try_run`] — zero recovery
    /// bookkeeping, so a run that never stalls is bit-identical to an
    /// unwrapped one. Every further pass re-polls only the tags still
    /// active (polled tags are asleep), merging counters, clock and trace
    /// in the shared context.
    pub fn run(&self, ctx: &mut SimContext) -> RecoveryOutcome {
        run_recovered(&self.protocol, &self.policy, ctx)
    }
}

/// Free-function form of [`RecoverySession::run`] for unsized protocols
/// (e.g. `&dyn PollingProtocol` out of a factory).
pub fn run_recovered<P: PollingProtocol + ?Sized>(
    protocol: &P,
    policy: &RecoveryPolicy,
    ctx: &mut SimContext,
) -> RecoveryOutcome {
    // The pass loop — per-pass progress accounting, the idle-round circuit
    // breaker, backoff with jitter, reselection — lives in the session
    // driver now, shared with deadline budgets and checkpoint/restore; this
    // wrapper only maps the richer SessionEnd onto the recovery vocabulary.
    match crate::session::run_recovered_session(protocol, policy, ctx) {
        crate::session::SessionEnd::Complete { report, passes } => {
            RecoveryOutcome::Complete { report, passes }
        }
        crate::session::SessionEnd::Degraded {
            report,
            coverage,
            passes,
            ..
        } => RecoveryOutcome::Degraded {
            report,
            coverage,
            passes,
        },
        crate::session::SessionEnd::Stalled(_) => {
            unreachable!("a session with a policy resolves every stall")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpp::HppConfig;
    use crate::tpp::TppConfig;
    use rfid_system::fault::{FaultModel, FaultPlan, KillRule};
    use rfid_system::{BitVec, SimConfig, SimContext, TagPopulation};

    fn ctx_with(n: usize, seed: u64, fault: FaultModel) -> SimContext {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        SimContext::new(pop, &SimConfig::paper(seed).with_fault(fault))
    }

    fn small_budget_hpp() -> crate::hpp::Hpp {
        // A tiny per-pass round budget forces multi-pass recovery even at
        // moderate loss, exercising the backoff and merge paths.
        HppConfig {
            max_rounds: 4,
            ..HppConfig::default()
        }
        .into_protocol()
    }

    #[test]
    fn perfect_channel_completes_in_one_pass() {
        let mut ctx = ctx_with(100, 1, FaultModel::perfect());
        let session = RecoverySession::new(
            HppConfig::default().into_protocol(),
            RecoveryPolicy::unbounded(),
        );
        let out = session.run(&mut ctx);
        assert!(out.is_complete());
        assert_eq!(out.passes(), 1);
        assert_eq!(out.coverage(), 1.0);
        assert_eq!(ctx.counters.recovery_passes, 0);
        assert_eq!(ctx.counters.recovery_backoff_us, 0);
    }

    #[test]
    fn lossy_channel_converges_over_multiple_passes() {
        let fault = FaultModel::perfect().with_downlink_loss(0.4);
        let mut ctx = ctx_with(200, 7, fault);
        let out = run_recovered(&small_budget_hpp(), &RecoveryPolicy::unbounded(), &mut ctx);
        assert!(out.is_complete(), "survivable loss must converge");
        assert!(out.passes() > 1, "a 4-round budget cannot finish pass 1");
        ctx.assert_complete();
        assert_eq!(ctx.counters.recovery_passes, out.passes() - 1);
        assert!(ctx.counters.recovery_backoff_us > 0);
        let report = out.report();
        assert_eq!(report.counters.polls, 200, "partial reports merged");
    }

    #[test]
    fn dead_channel_degrades_with_consistent_coverage() {
        let fault = FaultModel::perfect().with_downlink_loss(1.0);
        let mut ctx = ctx_with(50, 3, fault);
        let out = run_recovered(&small_budget_hpp(), &RecoveryPolicy::unbounded(), &mut ctx);
        let RecoveryOutcome::Degraded {
            report,
            coverage,
            passes,
        } = out
        else {
            panic!("a jammed downlink cannot complete");
        };
        assert_eq!(coverage, 0.0);
        assert_eq!(report.counters.polls, 0);
        // With a 4-round budget every pass is a zero-progress RoundCap
        // stall worth 4 idle rounds, so the breaker needs 512 / 4 = 128
        // passes — bounded, unlike a streak counter that ignores RoundCap.
        assert_eq!(passes, 128);
        assert_eq!(ctx.counters.recovery_passes, 127);
    }

    #[test]
    fn killed_tag_degrades_with_partial_coverage() {
        let plan = FaultPlan {
            kill_after_replies: vec![KillRule {
                tag: 5,
                after_replies: 0,
            }],
            ..FaultPlan::none()
        };
        let fault = FaultModel::perfect().with_plan(plan);
        let mut ctx = ctx_with(40, 11, fault);
        // Default (large) round budget: each pass ends in a NoProgress
        // stall, so the breaker opens after `zero_progress_limit` passes
        // beyond the last progress.
        let protocol = HppConfig::default().into_protocol();
        let out = run_recovered(&protocol, &RecoveryPolicy::unbounded(), &mut ctx);
        let RecoveryOutcome::Degraded {
            report, coverage, ..
        } = out
        else {
            panic!("a dead tag can never be collected");
        };
        assert_eq!(report.counters.polls, 39);
        assert!((coverage - 39.0 / 40.0).abs() < 1e-12);
        assert_eq!(ctx.uncollected_handles(), vec![5]);
    }

    #[test]
    fn max_passes_caps_the_session() {
        let fault = FaultModel::perfect().with_downlink_loss(1.0);
        let mut ctx = ctx_with(30, 5, fault);
        let policy = RecoveryPolicy::unbounded().with_max_passes(3);
        let out = run_recovered(&small_budget_hpp(), &policy, &mut ctx);
        assert!(!out.is_complete());
        assert_eq!(out.passes(), 3);
        assert_eq!(ctx.counters.recovery_passes, 2);
    }

    #[test]
    fn backoff_ladder_is_exponential_and_capped() {
        let p = RecoveryPolicy::default().with_backoff(1_000, 16_000);
        assert_eq!(p.backoff_us(1), 1_000);
        assert_eq!(p.backoff_us(2), 2_000);
        assert_eq!(p.backoff_us(3), 4_000);
        assert_eq!(p.backoff_us(5), 16_000);
        assert_eq!(p.backoff_us(60), 16_000, "shift saturates, cap holds");
    }

    #[test]
    fn recovery_is_deterministic_per_seed() {
        let run_once = |seed: u64| {
            let fault = FaultModel::perfect().with_downlink_loss(0.5);
            let mut ctx = ctx_with(120, seed, fault);
            let out = run_recovered(&small_budget_hpp(), &RecoveryPolicy::unbounded(), &mut ctx);
            (out.passes(), ctx.counters, ctx.clock.total())
        };
        assert_eq!(run_once(9), run_once(9));
        assert_ne!(run_once(9).2, run_once(10).2);
    }

    #[test]
    fn tpp_recovers_by_re_descending_the_tree() {
        let fault = FaultModel::perfect().with_downlink_loss(0.4);
        let protocol = TppConfig {
            max_rounds: 4,
            ..TppConfig::default()
        }
        .into_protocol();
        let mut ctx = ctx_with(150, 13, fault);
        let out = run_recovered(&protocol, &RecoveryPolicy::unbounded(), &mut ctx);
        assert!(out.is_complete());
        assert!(out.passes() > 1);
        ctx.assert_complete();
    }

    #[test]
    fn policy_round_trips_through_json() {
        let p = RecoveryPolicy::unbounded()
            .with_max_passes(9)
            .with_backoff(500, 8_000)
            .with_zero_progress_limit(3);
        let json = rfid_system::to_json_string(&p);
        let back: RecoveryPolicy = rfid_system::from_json_str(&json).expect("parses");
        assert_eq!(back, p);
    }

    #[test]
    #[should_panic(expected = "zero-progress limit")]
    fn zero_progress_limit_zero_is_rejected() {
        let _ = RecoveryPolicy::default().with_zero_progress_limit(0);
    }
}
