//! The Hash Polling Protocol (Section III).
//!
//! HPP replaces the 96-bit ID with a short hashed index:
//!
//! 1. The reader initiates a round by broadcasting `(h, r)` where
//!    `2^{h-1} < n' ≤ 2^h` for the `n'` unread tags and `r` is a fresh seed.
//! 2. Every unread tag picks the index `H(r, id) mod 2^h` (zero-padded to
//!    `h` bits). The reader — knowing every ID — precomputes all picks.
//! 3. The reader broadcasts the *singleton* indices one by one. Only the tag
//!    whose own index matches replies, then sleeps. Collision-index tags
//!    stay awake for the next round; empty indices are never transmitted,
//!    so no slot is ever wasted.
//! 4. Rounds repeat until every tag is read (36.8 %–60.7 % of the residue
//!    is cleared per round).

use rfid_analysis::hpp::index_length;
use rfid_hash::TagHash;
use rfid_system::{Json, JsonError, SimContext};

use crate::session::{ProtocolStepper, StepDiscipline, StepOutcome};
use crate::PollingProtocol;

/// HPP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HppConfig {
    /// Reader bits charged to initiate each round (broadcasting `(h, r)`).
    /// The Section-V simulation setting charges 32.
    pub round_init_bits: u64,
    /// Whether each polling vector rides behind a 4-bit QueryRep (the
    /// paper's `37.45·(4+w)` accounting).
    pub with_query_rep: bool,
    /// Safety cap on rounds (loops can only persist on a pathologically
    /// lossy channel).
    pub max_rounds: u64,
}

impl Default for HppConfig {
    fn default() -> Self {
        HppConfig {
            round_init_bits: 32,
            with_query_rep: true,
            max_rounds: 1_000_000,
        }
    }
}

impl HppConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> Hpp {
        Hpp { cfg: self }
    }
}

/// The Hash Polling Protocol.
#[derive(Debug, Clone, Default)]
pub struct Hpp {
    cfg: HppConfig,
}

impl Hpp {
    /// Creates HPP with the given configuration.
    pub fn new(cfg: HppConfig) -> Self {
        Hpp { cfg }
    }
}

impl PollingProtocol for Hpp {
    fn name(&self) -> &'static str {
        "HPP"
    }

    fn open_stepper(&self, _ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(HppStepper { cfg: self.cfg })
    }

    fn resume_stepper(
        &self,
        _ctx: &SimContext,
        _state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        // All HPP cross-round state lives in the context (which tags are
        // still awake); the stepper itself is stateless.
        Ok(Box::new(HppStepper { cfg: self.cfg }))
    }
}

/// One step = one HPP round. Round budget and stall guard are the
/// driver's job.
struct HppStepper {
    cfg: HppConfig,
}

impl ProtocolStepper for HppStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::budgeted(self.cfg.max_rounds)
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        hpp_round(ctx, &self.cfg);
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(Vec::new())
    }

    fn reset(&mut self, _ctx: &SimContext) {}
}

/// The index every tag (and the reader, by precomputation) derives in a
/// round: `H(r, id) mod 2^h`. Exposed so tests can replay the tag-side
/// computation independently of the reader-side sift.
#[inline]
pub fn tag_index(seed: u64, id: rfid_system::TagId, h: u32) -> u64 {
    TagHash::new(seed).index(id.hi(), id.lo(), h)
}

/// Reader-side sift: the singleton indices of the current round, as sorted
/// `(index, tag handle)` pairs. Indices picked by two or more tags
/// (collision indices) and by none (empty indices) are skipped entirely —
/// this is where HPP's zero slot waste comes from. Delegates to the
/// context's reusable [`rfid_system::RoundIndex`], which bucket-sorts the
/// hashed indices in one O(active) pass; recycle the returned buffer with
/// [`SimContext::recycle_singletons`] to keep rounds allocation-free.
pub(crate) fn singleton_indices(ctx: &mut SimContext, seed: u64, h: u32) -> Vec<(u64, usize)> {
    ctx.sift_singletons(seed, h)
}

/// Runs one HPP round over the currently active tags; returns the number of
/// tags successfully polled.
pub(crate) fn hpp_round(ctx: &mut SimContext, cfg: &HppConfig) -> usize {
    let n = ctx.population.active_count();
    debug_assert!(n > 0, "round over an empty population");
    let h = index_length(n as u64);
    let seed = ctx.draw_round_seed();
    ctx.begin_round(h, cfg.round_init_bits);
    let singles = singleton_indices(ctx, seed, h);
    let mut polled = 0;
    for &(_, tag) in &singles {
        if ctx.poll_tag(h as u64, cfg.with_query_rep, tag) {
            polled += 1;
        }
    }
    ctx.recycle_singletons(singles);
    polled
}

rfid_system::impl_json_struct!(HppConfig {
    round_init_bits,
    with_query_rep,
    max_rounds
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{PollingError, StallCause};
    use crate::report::Report;
    use rfid_system::{BitVec, Channel, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64, cfg: HppConfig) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = Hpp::new(cfg).run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn reads_every_tag_exactly_once() {
        let (report, ctx) = run(500, 1, HppConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 500);
        // Polling never wastes a slot on a perfect channel.
        assert_eq!(report.counters.empty_slots, 0);
        assert_eq!(report.counters.collision_slots, 0);
    }

    #[test]
    fn vector_length_is_bounded_by_log2_n() {
        // Eq. (5): every index is at most ⌈log₂ n⌉ bits.
        let (report, _) = run(1_000, 2, HppConfig::default());
        let w = report.mean_vector_bits();
        assert!(w <= 10.0, "w = {w}");
        // And Fig. 3/10: w ≈ 9.4–10 at n = 1000.
        assert!(w > 8.5, "w = {w}");
    }

    #[test]
    fn matches_analytic_average_within_noise() {
        let n = 2_000u64;
        let analytic = rfid_analysis::hpp::average_vector_length(n);
        let mut acc = 0.0;
        let runs = 5;
        for s in 0..runs {
            let (r, _) = run(n as usize, 100 + s, HppConfig::default());
            acc += r.mean_vector_bits();
        }
        let sim = acc / runs as f64;
        assert!(
            (sim - analytic).abs() < 0.25,
            "simulated {sim} vs analytic {analytic}"
        );
    }

    #[test]
    fn first_round_reads_paper_fraction() {
        // 36.8 %–60.7 % of tags are read in a round (Section III-A).
        let pop = TagPopulation::sequential(4_096, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(3));
        let polled = hpp_round(&mut ctx, &HppConfig::default());
        let frac = polled as f64 / 4_096.0;
        assert!((0.33..=0.64).contains(&frac), "first-round fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = run(300, 7, HppConfig::default());
        let (b, _) = run(300, 7, HppConfig::default());
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.counters.rounds, b.counters.rounds);
        let (c, _) = run(300, 8, HppConfig::default());
        assert_ne!(a.total_time, c.total_time);
    }

    #[test]
    fn completes_on_a_lossy_channel() {
        let pop = TagPopulation::sequential(200, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(5).with_channel(Channel::lossy(0.3));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = Hpp::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 200);
        assert!(report.counters.lost_replies > 0);
    }

    #[test]
    fn permanently_jammed_downlink_stalls_gracefully() {
        use rfid_system::fault::FaultModel;
        let pop = TagPopulation::sequential(50, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(5).with_fault(FaultModel::perfect().with_downlink_loss(1.0));
        let mut ctx = SimContext::new(pop, &cfg);
        match Hpp::default().try_run(&mut ctx) {
            Err(PollingError::Stalled {
                partial_report,
                uncollected,
                cause,
            }) => {
                assert_eq!(partial_report.counters.polls, 0);
                assert_eq!(uncollected.len(), 50);
                assert_eq!(cause, StallCause::NoProgress);
            }
            Ok(_) => panic!("cannot converge when no tag hears any command"),
        }
    }

    #[test]
    fn recovers_under_moderate_downlink_loss() {
        use rfid_system::fault::FaultModel;
        let pop = TagPopulation::sequential(200, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(6).with_fault(FaultModel::perfect().with_downlink_loss(0.3));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = Hpp::default().try_run(&mut ctx).expect("must converge");
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 200);
        assert!(report.counters.downlink_losses > 0);
        assert!(report.counters.desync_recoveries > 0);
    }

    #[test]
    fn single_tag_needs_zero_bit_vector() {
        let (report, ctx) = run(1, 9, HppConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.vector_bits, 0);
        assert_eq!(report.counters.rounds, 1);
    }

    #[test]
    fn singleton_sift_matches_tag_side_replay() {
        // Fidelity check: replay every tag's own index computation and
        // confirm the reader's sift picked exactly the indices chosen once.
        let pop = TagPopulation::sequential(64, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(11));
        let seed = 0xFEED;
        let h = 6;
        let singles = singleton_indices(&mut ctx, seed, h);
        let mut counts = std::collections::HashMap::new();
        for (_, t) in ctx.population.iter() {
            *counts.entry(tag_index(seed, t.id, h)).or_insert(0u32) += 1;
        }
        for &(idx, tag) in &singles {
            assert_eq!(counts[&idx], 1, "index {idx} not a singleton");
            assert_eq!(tag_index(seed, ctx.population.get(tag).id, h), idx);
        }
        let expected = counts.values().filter(|&&c| c == 1).count();
        assert_eq!(singles.len(), expected);
    }

    #[test]
    fn fig2_style_round_with_four_tags() {
        // Four tags, h = 2: at most 4 singleton indices; every polled tag
        // sleeps; the rest stay alert for the next round — the Fig. 2 story.
        let pop = TagPopulation::sequential(4, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(21).with_trace());
        // A single round may read 0–4 tags (all four can pair up into
        // collision indices); whatever it reads goes to sleep, the rest
        // stay alert, and repetition drains everyone — the Fig. 2 story.
        let mut asleep = 0;
        for _ in 0..1_000 {
            if ctx.population.active_count() == 0 {
                break;
            }
            let polled = hpp_round(&mut ctx, &HppConfig::default());
            asleep += polled;
            assert_eq!(ctx.population.asleep_count(), asleep);
            assert_eq!(ctx.population.active_count(), 4 - asleep);
        }
        ctx.assert_complete();
        assert!(!ctx.log.is_empty());
    }

    #[test]
    fn round_init_bits_increase_time_but_not_vector_metric() {
        let (with, _) = run(100, 13, HppConfig::default());
        let (without, _) = run(
            100,
            13,
            HppConfig {
                round_init_bits: 0,
                ..HppConfig::default()
            },
        );
        assert!(with.total_time > without.total_time);
        assert_eq!(with.mean_vector_bits(), without.mean_vector_bits());
        assert!(with.mean_vector_bits_with_overhead() > with.mean_vector_bits());
    }
}
