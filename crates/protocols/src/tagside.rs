//! The tag-side state machine.
//!
//! A C1G2 tag is a passive automaton: it hears reader broadcasts and
//! decides — from its own ID and local state only — whether to backscatter.
//! [`TagMachine`] implements that automaton for the paper's protocols:
//!
//! * on a round initiation `(h, r)` an unread tag computes its index
//!   `H(r, id) mod 2^h` and clears its array `A`,
//! * on an HPP polling vector it replies iff the vector equals its index,
//! * on a TPP tree segment it overwrites the last `k` bits of `A` and
//!   replies iff `A` now equals its index,
//! * once read it sleeps and ignores everything.
//!
//! The reader-side implementations (`hpp`, `tpp`) simulate large
//! populations without instantiating one machine per tag — the singleton
//! sift *is* the aggregate of all tag computations. The machines exist so
//! the test-suite can prove that equivalence by replay: drive a full
//! protocol run twice, once through the fast reader-side path and once
//! broadcast-by-broadcast through `n` independent machines, and require
//! identical replies throughout (see `tests::*` and
//! `tests/tagside_replay.rs`).

use rfid_hash::TagHash;
use rfid_system::{BitVec, TagId};

/// A reader broadcast as heard by tags.
#[derive(Debug, Clone, PartialEq)]
pub enum Broadcast {
    /// Round initiation carrying the index length and the seed.
    RoundInit {
        /// Index length `h`.
        h: u32,
        /// Random seed `r`.
        seed: u64,
    },
    /// A full singleton index (HPP-style poll).
    PollIndex(BitVec),
    /// A TPP pre-order tree segment (differential suffix).
    TreeSegment(BitVec),
}

/// One tag's protocol automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct TagMachine {
    id: TagId,
    read: bool,
    h: u32,
    my_index: BitVec,
    a: BitVec,
    in_round: bool,
}

impl TagMachine {
    /// A fresh (unread) tag automaton.
    pub fn new(id: TagId) -> Self {
        TagMachine {
            id,
            read: false,
            h: 0,
            my_index: BitVec::new(),
            a: BitVec::new(),
            in_round: false,
        }
    }

    /// The tag's ID.
    pub fn id(&self) -> TagId {
        self.id
    }

    /// Whether the tag has been interrogated (and sleeps).
    pub fn is_read(&self) -> bool {
        self.read
    }

    /// The index the tag picked this round (empty outside a round).
    pub fn current_index(&self) -> &BitVec {
        &self.my_index
    }

    /// Whether the tag is synchronized to the current round (it heard and
    /// processed the round initiation).
    pub fn in_round(&self) -> bool {
        self.in_round
    }

    /// The tag missed a downlink command (round initiation, circle command):
    /// it drops out of the round and stays silent — its stale index must not
    /// answer polls computed from a seed it never heard. It re-joins on the
    /// next `RoundInit` it receives.
    pub fn desync(&mut self) {
        self.h = 0;
        self.my_index = BitVec::new();
        self.a = BitVec::new();
        self.in_round = false;
    }

    /// The reader NAK'd this tag's (corrupted) reply: the tag stays unread
    /// and keeps its round state so the retransmission can be addressed
    /// again within the same exchange.
    pub fn nak(&mut self) {
        self.read = false;
    }

    /// Processes one broadcast; returns `true` iff the tag backscatters its
    /// payload *now*. A replying tag marks itself read (the reader's
    /// acknowledgement is implicit in the paper's exchange).
    pub fn receive(&mut self, broadcast: &Broadcast) -> bool {
        if self.read {
            return false;
        }
        match broadcast {
            Broadcast::RoundInit { h, seed } => {
                self.h = *h;
                self.my_index = BitVec::from_value(
                    TagHash::new(*seed).index(self.id.hi(), self.id.lo(), *h),
                    *h as usize,
                );
                self.a = BitVec::zeros(*h as usize);
                self.in_round = true;
                false
            }
            Broadcast::PollIndex(vector) => {
                if !self.in_round {
                    // Desynchronized (or never initialized): fail-safe
                    // silence, the reader will time out and retry later.
                    return false;
                }
                if *vector == self.my_index {
                    self.read = true;
                    true
                } else {
                    false
                }
            }
            Broadcast::TreeSegment(segment) => {
                if !self.in_round {
                    return false;
                }
                if segment.len() > self.a.len() {
                    // Malformed broadcast for this round; a real tag would
                    // simply not match. Ignore defensively.
                    return false;
                }
                self.a.overwrite_suffix(segment);
                if self.a == self.my_index {
                    self.read = true;
                    true
                } else {
                    false
                }
            }
        }
    }
}

impl rfid_system::ToJson for Broadcast {
    fn to_json(&self) -> rfid_system::Json {
        use rfid_system::Json;
        match self {
            Broadcast::RoundInit { h, seed } => Json::Obj(vec![(
                "RoundInit".to_string(),
                Json::Obj(vec![
                    ("h".to_string(), h.to_json()),
                    ("seed".to_string(), seed.to_json()),
                ]),
            )]),
            Broadcast::PollIndex(v) => Json::Obj(vec![("PollIndex".to_string(), v.to_json())]),
            Broadcast::TreeSegment(v) => Json::Obj(vec![("TreeSegment".to_string(), v.to_json())]),
        }
    }
}

impl rfid_system::FromJson for Broadcast {
    fn from_json(json: &rfid_system::Json) -> Result<Self, rfid_system::JsonError> {
        use rfid_system::{Json, JsonError};
        let fields = match json {
            Json::Obj(fields) if fields.len() == 1 => fields,
            other => return Err(JsonError(format!("malformed Broadcast: {other}"))),
        };
        let (tag, body) = &fields[0];
        match tag.as_str() {
            "RoundInit" => Ok(Broadcast::RoundInit {
                h: body.field("h")?,
                seed: body.field("seed")?,
            }),
            "PollIndex" => Ok(Broadcast::PollIndex(BitVec::from_json(body)?)),
            "TreeSegment" => Ok(Broadcast::TreeSegment(BitVec::from_json(body)?)),
            other => Err(JsonError(format!("unknown Broadcast variant '{other}'"))),
        }
    }
}

rfid_system::impl_json_struct!(TagMachine {
    id,
    read,
    h,
    my_index,
    a,
    in_round
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::PollingTree;

    fn ids(n: u64) -> Vec<TagId> {
        (0..n).map(|i| TagId::from_raw(0, i)).collect()
    }

    /// Drives one full HPP-style inventory through machines only.
    #[test]
    fn machines_complete_an_hpp_inventory() {
        let mut machines: Vec<TagMachine> = ids(64).into_iter().map(TagMachine::new).collect();
        for seed in 1000u64..1200 {
            let unread = machines.iter().filter(|m| !m.is_read()).count() as u64;
            if unread == 0 {
                break;
            }
            let h = rfid_analysis::hpp::index_length(unread);
            let init = Broadcast::RoundInit { h, seed };
            for m in &mut machines {
                assert!(!m.receive(&init), "round init must never trigger a reply");
            }
            // The reader's sift: group unread machines by their index.
            let mut groups: std::collections::HashMap<u64, Vec<usize>> =
                std::collections::HashMap::new();
            for (i, m) in machines.iter().enumerate() {
                if !m.is_read() {
                    groups
                        .entry(m.current_index().to_value())
                        .or_default()
                        .push(i);
                }
            }
            let mut singles: Vec<u64> = groups
                .iter()
                .filter(|(_, v)| v.len() == 1)
                .map(|(&idx, _)| idx)
                .collect();
            singles.sort_unstable();
            for idx in singles {
                let poll = Broadcast::PollIndex(BitVec::from_value(idx, h as usize));
                let repliers: Vec<usize> = machines
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(i, m)| m.receive(&poll).then_some(i))
                    .collect();
                assert_eq!(repliers.len(), 1, "poll {idx} drew {repliers:?}");
            }
        }
        assert!(machines.iter().all(|m| m.is_read()), "inventory incomplete");
    }

    /// Drives one TPP round through machines and checks tree equivalence.
    #[test]
    fn machines_decode_a_polling_tree_round() {
        let mut machines: Vec<TagMachine> = ids(128).into_iter().map(TagMachine::new).collect();
        let h = 8u32;
        let seed = 42u64;
        let init = Broadcast::RoundInit { h, seed };
        for m in &mut machines {
            m.receive(&init);
        }
        let mut groups: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, m) in machines.iter().enumerate() {
            groups
                .entry(m.current_index().to_value())
                .or_default()
                .push(i);
        }
        let mut singles: Vec<(u64, usize)> = groups
            .iter()
            .filter(|(_, v)| v.len() == 1)
            .map(|(&idx, v)| (idx, v[0]))
            .collect();
        singles.sort_unstable();
        assert!(!singles.is_empty());
        let tree =
            PollingTree::from_indices(h, &singles.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        for (segment, &(_, expected)) in tree.preorder_segments().iter().zip(&singles) {
            let b = Broadcast::TreeSegment(segment.clone());
            let repliers: Vec<usize> = machines
                .iter_mut()
                .enumerate()
                .filter_map(|(i, m)| m.receive(&b).then_some(i))
                .collect();
            assert_eq!(repliers, vec![expected], "segment {segment} misdelivered");
        }
    }

    #[test]
    fn read_tags_sleep_through_everything() {
        let mut m = TagMachine::new(TagId::from_raw(0, 7));
        m.receive(&Broadcast::RoundInit { h: 2, seed: 5 });
        let my = m.current_index().clone();
        assert!(m.receive(&Broadcast::PollIndex(my.clone())));
        assert!(m.is_read());
        // Asleep: ignores new rounds and matching polls alike.
        assert!(!m.receive(&Broadcast::RoundInit { h: 2, seed: 6 }));
        assert!(!m.receive(&Broadcast::PollIndex(my)));
    }

    #[test]
    fn non_matching_poll_is_ignored() {
        let mut m = TagMachine::new(TagId::from_raw(0, 9));
        m.receive(&Broadcast::RoundInit { h: 4, seed: 3 });
        let mut other = m.current_index().clone();
        other.set(0, !other.get(0));
        assert!(!m.receive(&Broadcast::PollIndex(other)));
        assert!(!m.is_read());
    }

    #[test]
    fn oversized_segment_is_ignored_defensively() {
        let mut m = TagMachine::new(TagId::from_raw(0, 3));
        m.receive(&Broadcast::RoundInit { h: 2, seed: 1 });
        assert!(!m.receive(&Broadcast::TreeSegment(BitVec::from_str_bits("10101"))));
    }

    #[test]
    fn desynced_tag_is_silent_until_it_hears_a_round_init() {
        let mut m = TagMachine::new(TagId::from_raw(0, 7));
        m.receive(&Broadcast::RoundInit { h: 2, seed: 5 });
        let my = m.current_index().clone();
        m.desync();
        assert!(!m.in_round());
        // Fail-safe: the stale index must not answer anything.
        assert!(!m.receive(&Broadcast::PollIndex(my)));
        assert!(!m.receive(&Broadcast::TreeSegment(BitVec::from_str_bits("1"))));
        assert!(!m.is_read());
        // Hearing the next round initiation re-joins.
        m.receive(&Broadcast::RoundInit { h: 2, seed: 6 });
        assert!(m.in_round());
        let idx = m.current_index().clone();
        assert!(m.receive(&Broadcast::PollIndex(idx)));
    }

    #[test]
    fn nak_keeps_the_tag_pollable_in_place() {
        let mut m = TagMachine::new(TagId::from_raw(0, 11));
        m.receive(&Broadcast::RoundInit { h: 3, seed: 2 });
        let my = m.current_index().clone();
        assert!(m.receive(&Broadcast::PollIndex(my.clone())));
        // The reply was corrupted; the reader NAKs and re-addresses.
        m.nak();
        assert!(!m.is_read());
        assert!(m.in_round(), "NAK must not cost the round state");
        assert!(m.receive(&Broadcast::PollIndex(my)));
        assert!(m.is_read());
    }

    #[test]
    fn poll_before_any_round_is_ignored() {
        let mut m = TagMachine::new(TagId::from_raw(0, 2));
        assert!(!m.receive(&Broadcast::PollIndex(BitVec::from_str_bits("00"))));
        assert!(!m.is_read());
    }
}
