//! # rfid-identify — tag identification (anti-collision) protocols
//!
//! The polling protocols of *Fast RFID Polling Protocols* assume the reader
//! already knows every tag ID — "a fundamental assumption for many
//! system-level applications". That knowledge comes from an earlier
//! *identification* pass, the classical anti-collision problem. This crate
//! implements the three canonical families, on the same simulator substrate
//! and C1G2 timing as everything else:
//!
//! * [`query_tree::QueryTree`] — deterministic prefix splitting: the reader
//!   broadcasts an ID prefix, matching tags reply with their remainder,
//!   collisions split the prefix 0/1 (memoryless, ≈2.9 queries/tag on
//!   random IDs),
//! * [`q_algorithm::QAlgorithm`] — the C1G2 standard's slotted-ALOHA
//!   inventory with the floating-point `Q` adaptation, the RN16 → ACK → EPC
//!   handshake and QueryRep/QueryAdjust slot control,
//! * [`binary_split::BinarySplit`] — randomized binary tree splitting with
//!   tag-side counters (Capetanakis-style).
//!
//! All three implement [`rfid_protocols::PollingProtocol`] ("reading" a tag
//! = identifying it), so they slot into the same harness — and quantify the
//! paper's premise: identification costs milliseconds per tag, so once IDs
//! are known, sub-millisecond polling is the right tool for re-reads
//! (see `examples/identification.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary_split;
pub mod q_algorithm;
pub mod query_tree;

pub use binary_split::{BinarySplit, BinarySplitConfig};
pub use q_algorithm::{QAlgorithm, QAlgorithmConfig};
pub use query_tree::{QueryTree, QueryTreeConfig};
