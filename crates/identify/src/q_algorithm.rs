//! The C1G2 Q-algorithm — the standard's own slotted-ALOHA inventory.
//!
//! The reader opens a frame with `Query(Q)`; every unidentified tag draws a
//! slot counter uniformly from `[0, 2^Q)`. Counter-zero tags backscatter a
//! 16-bit RN16; the reader acknowledges one with an 18-bit `ACK`, and the
//! tag answers with its `PC + EPC + CRC-16` (128 bits). Each `QueryRep`
//! (4 bits) decrements all counters. The floating-point `Q_fp` adapts:
//! `+C` on a collision, `−C` on an empty slot; when `round(Q_fp)` drifts
//! from the current `Q` the reader issues a 9-bit `QueryAdjust`, restarting
//! the frame with the new size.
//!
//! This is the protocol every commercial C1G2 reader runs — and the
//! baseline that makes the paper's premise concrete: a full identification
//! handshake moves ~150 reader/tag bits per tag plus the slot waste, an
//! order of magnitude above polling's ~7.

use rfid_c1g2::commands::{ACK_BITS, QUERY_BITS};
use rfid_c1g2::TimeCategory;
use rfid_protocols::{PollingProtocol, ProtocolStepper, StallCause, StepDiscipline, StepOutcome};
use rfid_system::{BroadcastKind, Event, Json, JsonError, SimContext, SlotOutcome, ToJson};

/// PC + EPC + CRC-16 backscatter length.
const EPC_REPLY_BITS: u64 = 16 + 96 + 16;
/// QueryAdjust length.
const QUERY_ADJUST_BITS: u64 = 9;
/// RN16 handle backscattered in a contention slot — 16 bits on the air
/// whatever the tag's payload width is.
const RN16_BITS: u64 = 16;

/// Q-algorithm configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QAlgorithmConfig {
    /// Initial Q exponent.
    pub initial_q: u8,
    /// Adaptation constant `C` (the standard suggests 0.1–0.5).
    pub c: f64,
    /// Safety cap on total slots.
    pub max_slots: u64,
}

impl Default for QAlgorithmConfig {
    fn default() -> Self {
        QAlgorithmConfig {
            initial_q: 4,
            c: 0.3,
            max_slots: 100_000_000,
        }
    }
}

impl QAlgorithmConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> QAlgorithm {
        QAlgorithm { cfg: self }
    }
}

/// The C1G2 Q-algorithm inventory.
#[derive(Debug, Clone, Default)]
pub struct QAlgorithm {
    cfg: QAlgorithmConfig,
}

impl QAlgorithm {
    /// Creates the Q-algorithm with the given configuration.
    pub fn new(cfg: QAlgorithmConfig) -> Self {
        QAlgorithm { cfg }
    }
}

impl PollingProtocol for QAlgorithm {
    fn name(&self) -> &'static str {
        "Q-algo"
    }

    fn open_stepper(&self, _ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(QAlgorithmStepper::open(self.cfg))
    }

    fn resume_stepper(
        &self,
        _ctx: &SimContext,
        state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        let mut stepper = QAlgorithmStepper::open(self.cfg);
        stepper.q_fp = state.field("q_fp")?;
        if !stepper.q_fp.is_finite() {
            return Err(JsonError("Q-algo q_fp must be finite".into()));
        }
        stepper.slots_total = state.field("slots_total")?;
        Ok(Box::new(stepper))
    }
}

/// One step = one frame (a `Query` and every slot up to the frame end or a
/// `QueryAdjust` restart).
struct QAlgorithmStepper {
    cfg: QAlgorithmConfig,
    q_fp: f64,
    slots_total: u64,
    // Frame buffers reused across (re)starts: active handles, their
    // slot draws, per-slot end offsets, and the slot-ordered handles —
    // a counting sort replacing the old per-frame comparison sort. Rebuilt
    // at the top of every frame, so never serialized.
    handles: Vec<usize>,
    slot_of: Vec<u64>,
    ends: Vec<usize>,
    ordered: Vec<usize>,
}

impl QAlgorithmStepper {
    fn open(cfg: QAlgorithmConfig) -> Self {
        assert!(cfg.initial_q <= 15, "Q must be ≤ 15");
        assert!(cfg.c > 0.0, "adaptation constant must be positive");
        QAlgorithmStepper {
            cfg,
            q_fp: cfg.initial_q as f64,
            slots_total: 0,
            handles: Vec::new(),
            slot_of: Vec::new(),
            ends: Vec::new(),
            ordered: Vec::new(),
        }
    }
}

impl ProtocolStepper for QAlgorithmStepper {
    fn discipline(&self) -> StepDiscipline {
        // The total-slot cap below subsumes both the round budget and the
        // stall guard.
        StepDiscipline::self_limited()
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        {
            // Open (or re-open) a frame at the current Q.
            let q = self.q_fp.round().clamp(0.0, 15.0) as u32;
            ctx.reader_tx(
                BroadcastKind::Query,
                QUERY_BITS,
                TimeCategory::ReaderCommand,
            );
            ctx.counters.rounds += 1;
            let round = ctx.counters.rounds as usize;
            let unread = ctx.population.active_count();
            ctx.trace(|| Event::RoundStarted {
                round,
                h: q,
                unread,
            });
            let frame = 1u64 << q;

            // Every active tag draws its slot counter (ascending handle
            // order — the rng-to-tag assignment the protocol has always
            // used). Group by slot with a counting sort: stable fill keeps
            // handles ascending within a slot, matching the old
            // sort-by-(slot, handle) output exactly.
            let handles = &mut self.handles;
            let slot_of = &mut self.slot_of;
            let ends = &mut self.ends;
            let ordered = &mut self.ordered;
            handles.clear();
            ctx.population.collect_active_into(handles);
            slot_of.clear();
            slot_of.extend(handles.iter().map(|_| ctx.rng.below(frame)));
            ends.clear();
            ends.resize(frame as usize, 0);
            for &s in slot_of.iter() {
                ends[s as usize] += 1;
            }
            let mut acc = 0usize;
            for e in ends.iter_mut() {
                let c = *e;
                *e = acc;
                acc += c;
            }
            ordered.clear();
            ordered.resize(handles.len(), 0);
            for (k, &s) in slot_of.iter().enumerate() {
                ordered[ends[s as usize]] = handles[k];
                ends[s as usize] += 1;
            }

            let mut slot = 0u64;
            loop {
                self.slots_total += 1;
                if self.slots_total >= self.cfg.max_slots {
                    return StepOutcome::Stalled(StallCause::RoundCap);
                }
                // Tags whose counter equals the current slot reply.
                let begin = if slot == 0 {
                    0
                } else {
                    ends[slot as usize - 1]
                };
                let repliers = &ordered[begin..ends[slot as usize]];
                // The slot carries an RN16 burst — 16 bits on the air no
                // matter what payload the tag stores; a decodable RN16
                // triggers the ACK → EPC handshake that completes
                // identification.
                ctx.reader_tx(
                    BroadcastKind::QueryRep,
                    rfid_c1g2::QUERY_REP_BITS,
                    TimeCategory::ReaderCommand,
                );
                ctx.counters.query_rep_bits += rfid_c1g2::QUERY_REP_BITS;
                ctx.wait(TimeCategory::Turnaround, ctx.link.t1);
                let outcome = ctx.channel.resolve(repliers, &mut ctx.rng);
                match outcome {
                    SlotOutcome::Empty => {
                        ctx.wait(TimeCategory::WastedSlot, ctx.link.t3);
                        ctx.counters.empty_slots += 1;
                        ctx.trace(|| Event::SlotEmpty);
                        self.q_fp = (self.q_fp - self.cfg.c).max(0.0);
                    }
                    SlotOutcome::Singleton(tag) => {
                        ctx.wait(TimeCategory::TagReply, ctx.link.tag_tx(RN16_BITS));
                        ctx.counters.tag_bits += RN16_BITS;
                        ctx.trace(|| Event::TagReply {
                            tag,
                            bits: RN16_BITS,
                        });
                        ctx.wait(TimeCategory::Turnaround, ctx.link.t2);
                        ctx.reader_tx(BroadcastKind::Ack, ACK_BITS, TimeCategory::ReaderCommand);
                        ctx.wait(TimeCategory::Turnaround, ctx.link.t1);
                        ctx.wait(TimeCategory::TagReply, ctx.link.tag_tx(EPC_REPLY_BITS));
                        ctx.counters.tag_bits += EPC_REPLY_BITS;
                        ctx.trace(|| Event::TagReply {
                            tag,
                            bits: EPC_REPLY_BITS,
                        });
                        ctx.wait(TimeCategory::Turnaround, ctx.link.t2);
                        ctx.mark_read(tag);
                    }
                    SlotOutcome::Collision(count) => {
                        ctx.wait(TimeCategory::WastedSlot, ctx.link.tag_tx(RN16_BITS));
                        ctx.wait(TimeCategory::Turnaround, ctx.link.t2);
                        ctx.counters.collision_slots += 1;
                        ctx.trace(|| Event::SlotCollision { count });
                        self.q_fp = (self.q_fp + self.cfg.c).min(15.0);
                    }
                    SlotOutcome::Corrupted(tag) => {
                        // Garbled RN16: the reader cannot ACK it. The tag
                        // re-draws in the next frame; Q is left alone (the
                        // slot was neither empty nor a collision).
                        ctx.wait(TimeCategory::WastedSlot, ctx.link.tag_tx(RN16_BITS));
                        ctx.wait(TimeCategory::Turnaround, ctx.link.t2);
                        ctx.counters.corrupted_replies += 1;
                        ctx.trace(|| Event::ReplyCorrupted { tag });
                    }
                }
                slot += 1;
                // Frame ends when every slot has passed, or Q drifted.
                if slot >= frame {
                    break;
                }
                if self.q_fp.round() as u32 != q {
                    ctx.reader_tx(
                        BroadcastKind::QueryAdjust,
                        QUERY_ADJUST_BITS,
                        TimeCategory::ReaderCommand,
                    );
                    break;
                }
            }
        }
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(vec![
            ("q_fp".into(), self.q_fp.to_json()),
            ("slots_total".into(), self.slots_total.to_json()),
        ])
    }

    fn reset(&mut self, _ctx: &SimContext) {
        self.q_fp = self.cfg.initial_q as f64;
        self.slots_total = 0;
    }
}

rfid_system::impl_json_struct!(QAlgorithmConfig {
    initial_q,
    c,
    max_slots
});

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_protocols::Report;
    use rfid_system::{BitVec, Channel, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64, cfg: QAlgorithmConfig) -> (Report, SimContext) {
        // RN16 slot replies: model the 16-bit RN16 as the tag's "info".
        let pop = TagPopulation::sequential(n, |i| BitVec::from_value(i as u64 & 0xFFFF, 16));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = QAlgorithm::new(cfg).run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn identifies_every_tag() {
        let (report, ctx) = run(500, 1, QAlgorithmConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 500);
    }

    #[test]
    fn q_adapts_to_large_populations() {
        // Starting at Q = 4 (16 slots) with 2 000 tags, the algorithm must
        // grow Q rather than thrash: total slots stay within a small
        // multiple of n.
        let (report, _) = run(2_000, 2, QAlgorithmConfig::default());
        let slots =
            report.counters.polls + report.counters.empty_slots + report.counters.collision_slots;
        let per_tag = slots as f64 / 2_000.0;
        assert!((1.5..=6.0).contains(&per_tag), "slots per tag = {per_tag}");
    }

    #[test]
    fn small_c_converges_too() {
        let (report, ctx) = run(
            300,
            3,
            QAlgorithmConfig {
                c: 0.1,
                ..QAlgorithmConfig::default()
            },
        );
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 300);
    }

    #[test]
    fn handles_single_tag() {
        let (report, ctx) = run(1, 4, QAlgorithmConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 1);
    }

    #[test]
    fn survives_reply_loss() {
        let pop = TagPopulation::sequential(200, |_| BitVec::from_value(1, 16));
        let cfg = SimConfig::paper(5).with_channel(Channel::lossy(0.15));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = QAlgorithm::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 200);
    }

    #[test]
    fn identification_cost_dwarfs_polling() {
        let n = 1_000;
        let (qalg, _) = run(n, 6, QAlgorithmConfig::default());
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(6));
        let tpp = rfid_protocols::TppConfig::default()
            .into_protocol()
            .run(&mut ctx);
        assert!(
            qalg.total_time > tpp.total_time * 5.0,
            "Q-algo {} vs TPP {}",
            qalg.total_time,
            tpp.total_time
        );
    }
}
