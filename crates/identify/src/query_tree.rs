//! The Query Tree protocol (Law, Lee, Siu — the classical memoryless
//! tree-based anti-collision scheme).
//!
//! The reader keeps a LIFO of candidate prefixes, initially {0, 1}. For
//! each prefix `p` it broadcasts `|p|` bits; every unidentified tag whose
//! ID starts with `p` backscatters the *remainder* of its ID (plus CRC-16):
//!
//! * empty → the subtree is vacant, discard,
//! * singleton → the reply decodes to a full ID: identified,
//! * collision → push `p·0` and `p·1`.
//!
//! Tags need no state beyond their ID (memoryless); the expected query
//! count on uniform IDs is ≈ 2.89 per tag.

use rfid_c1g2::TimeCategory;
use rfid_protocols::{PollingProtocol, ProtocolStepper, StallCause, StepDiscipline, StepOutcome};
use rfid_system::id::EPC_BITS;
use rfid_system::{BroadcastKind, Event, Json, JsonError, SimContext, SlotOutcome, ToJson};

/// Query-Tree configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTreeConfig {
    /// Fixed command overhead preceding each prefix broadcast.
    pub command_bits: u64,
    /// CRC bits appended to every tag reply.
    pub reply_crc_bits: u64,
    /// Re-query a prefix after reading a singleton from it. On a perfect
    /// channel this wastes one empty slot per tag; on a lossy channel it is
    /// *required* for completeness — a collision whose other replies were
    /// all lost looks exactly like a singleton, and pruning the prefix
    /// would strand the masked tags.
    pub verify_singletons: bool,
}

impl Default for QueryTreeConfig {
    fn default() -> Self {
        QueryTreeConfig {
            command_bits: 4,
            reply_crc_bits: 16,
            verify_singletons: false,
        }
    }
}

impl QueryTreeConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> QueryTree {
        QueryTree { cfg: self }
    }
}

/// The Query Tree identification protocol.
#[derive(Debug, Clone, Default)]
pub struct QueryTree {
    cfg: QueryTreeConfig,
}

impl QueryTree {
    /// Creates Query Tree with the given configuration.
    pub fn new(cfg: QueryTreeConfig) -> Self {
        QueryTree { cfg }
    }
}

impl PollingProtocol for QueryTree {
    fn name(&self) -> &'static str {
        "QueryTree"
    }

    fn open_stepper(&self, ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(QueryTreeStepper::open(self.cfg, ctx))
    }

    fn resume_stepper(
        &self,
        ctx: &SimContext,
        state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        let mut stepper = QueryTreeStepper::open(self.cfg, ctx);
        stepper.queries = state.field("queries")?;
        let rows: Vec<Vec<u64>> = state.field("stack")?;
        stepper.stack.clear();
        for row in &rows {
            let [hi, lo, len] = row[..] else {
                return Err(JsonError(
                    "QueryTree stack entry must be a [hi, lo, len] triple".into(),
                ));
            };
            let value = (hi as u128) << 64 | lo as u128;
            if !(1..=EPC_BITS as u64).contains(&len) || value >> len != 0 {
                return Err(JsonError(format!(
                    "QueryTree stack entry {value:#x}/{len} is not a valid prefix"
                )));
            }
            stepper.stack.push((value, len as u32));
        }
        Ok(Box::new(stepper))
    }
}

/// One step = one prefix query (one pop off the LIFO).
struct QueryTreeStepper {
    cfg: QueryTreeConfig,
    /// Reader-side index: IDs sorted as 96-bit values. A prefix `p` of
    /// length `L` matches exactly the sorted range
    /// `[p·2^(96-L), (p+1)·2^(96-L))`, so each query resolves its repliers
    /// by binary search instead of re-scanning the whole population. Pure
    /// function of the immutable IDs: recomputed on resume, not serialized.
    sorted: Vec<(u128, usize)>,
    repliers: Vec<usize>,
    /// LIFO keeps memory logarithmic on random IDs (depth-first). Each
    /// entry is a right-aligned prefix value plus its bit length.
    stack: Vec<(u128, u32)>,
    queries: u64,
}

impl QueryTreeStepper {
    fn open(cfg: QueryTreeConfig, ctx: &SimContext) -> Self {
        let mut sorted: Vec<(u128, usize)> = ctx
            .population
            .iter()
            .map(|(h, t)| (t.id.as_u128(), h))
            .collect();
        sorted.sort_unstable();
        QueryTreeStepper {
            cfg,
            sorted,
            repliers: Vec::new(),
            stack: vec![(1, 1), (0, 1)],
            queries: 0,
        }
    }
}

impl ProtocolStepper for QueryTreeStepper {
    fn discipline(&self) -> StepDiscipline {
        // The query cap below subsumes both the round budget and the stall
        // guard: a lossy channel shows up as a stack that never drains.
        StepDiscipline::self_limited()
    }

    fn done(&self, _ctx: &SimContext) -> bool {
        self.stack.is_empty()
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        let Some(prefix) = self.stack.pop() else {
            return StepOutcome::Progressed;
        };
        let (value, len) = prefix;
        self.queries += 1;
        if self.queries >= 100_000_000 {
            // Channel too lossy to ever drain the stack.
            return StepOutcome::Stalled(StallCause::RoundCap);
        }
        // Matching tags: active tags whose ID begins with the prefix,
        // in ascending handle order (the population scan order the
        // channel model has always seen).
        let lo = value << (EPC_BITS as u32 - len);
        let hi = lo + (1u128 << (EPC_BITS as u32 - len));
        let start = self.sorted.partition_point(|&(id, _)| id < lo);
        let end = self.sorted.partition_point(|&(id, _)| id < hi);
        let active_words = ctx.population.active_words();
        self.repliers.clear();
        self.repliers.extend(
            self.sorted[start..end]
                .iter()
                .map(|&(_, h)| h)
                .filter(|&h| (active_words[h >> 6] >> (h & 63)) & 1 == 1),
        );
        self.repliers.sort_unstable();
        let repliers = &self.repliers;

        // The query costs the command overhead plus the prefix bits.
        // The prefix is a `Probe`: its bits are charged to the vector
        // metric only when the slot decodes a singleton (below).
        ctx.reader_tx(
            BroadcastKind::SlotPrefix,
            self.cfg.command_bits,
            TimeCategory::ReaderCommand,
        );
        ctx.counters.query_rep_bits += self.cfg.command_bits;
        ctx.reader_tx(
            BroadcastKind::Probe,
            len as u64,
            TimeCategory::PollingVector,
        );
        ctx.wait(TimeCategory::Turnaround, ctx.link.t1);

        let reply_bits = (EPC_BITS as u32 - len) as u64 + self.cfg.reply_crc_bits;
        match ctx.channel.resolve(repliers, &mut ctx.rng) {
            SlotOutcome::Empty => {
                if repliers.is_empty() {
                    ctx.wait(TimeCategory::WastedSlot, ctx.link.t3);
                    ctx.counters.empty_slots += 1;
                    ctx.trace(|| Event::SlotEmpty);
                } else {
                    // A reply was lost; the subtree must be revisited.
                    ctx.wait(TimeCategory::WastedSlot, ctx.link.t3);
                    ctx.counters.lost_replies += 1;
                    let lost = repliers[0];
                    ctx.trace(|| Event::ReplyLost { tag: lost });
                    ctx.counters.empty_slots += 1;
                    ctx.trace(|| Event::SlotEmpty);
                    self.stack.push(prefix);
                }
            }
            SlotOutcome::Singleton(tag) => {
                ctx.wait(TimeCategory::TagReply, ctx.link.tag_tx(reply_bits));
                ctx.counters.tag_bits += reply_bits;
                ctx.trace(|| Event::TagReply {
                    tag,
                    bits: reply_bits,
                });
                ctx.wait(TimeCategory::Turnaround, ctx.link.t2);
                ctx.counters.vector_bits += len as u64;
                let bits = len as u64;
                ctx.trace(|| Event::VectorCharged { bits });
                ctx.mark_read(tag);
                if self.cfg.verify_singletons {
                    self.stack.push(prefix);
                }
            }
            SlotOutcome::Collision(count) => {
                // Collided replies occupy the slot, then split.
                ctx.wait(TimeCategory::WastedSlot, ctx.link.tag_tx(reply_bits));
                ctx.wait(TimeCategory::Turnaround, ctx.link.t2);
                ctx.counters.collision_slots += 1;
                ctx.trace(|| Event::SlotCollision { count });
                debug_assert!(
                    (len as usize) < EPC_BITS,
                    "full-length prefix cannot collide among unique IDs"
                );
                self.stack.push((value << 1 | 1, len + 1));
                self.stack.push((value << 1, len + 1));
            }
            SlotOutcome::Corrupted(tag) => {
                // The reply arrived but failed CRC: re-query the SAME
                // prefix (splitting would descend forever on a lone
                // tag whose replies keep getting mangled).
                ctx.wait(TimeCategory::WastedSlot, ctx.link.tag_tx(reply_bits));
                ctx.wait(TimeCategory::Turnaround, ctx.link.t2);
                ctx.counters.corrupted_replies += 1;
                ctx.trace(|| Event::ReplyCorrupted { tag });
                self.stack.push(prefix);
            }
        }
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        // 96-bit prefix values split into [hi, lo, len] u64 triples.
        let stack: Vec<Vec<u64>> = self
            .stack
            .iter()
            .map(|&(v, len)| vec![(v >> 64) as u64, v as u64, len as u64])
            .collect();
        Json::Obj(vec![
            ("queries".into(), self.queries.to_json()),
            ("stack".into(), stack.to_json()),
        ])
    }

    fn reset(&mut self, _ctx: &SimContext) {
        self.stack.clear();
        self.stack.push((1, 1));
        self.stack.push((0, 1));
        self.queries = 0;
    }
}

rfid_system::impl_json_struct!(QueryTreeConfig {
    command_bits,
    reply_crc_bits,
    verify_singletons
});

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_system::{BitVec, Channel, SimConfig, TagId, TagPopulation};

    fn random_population(n: usize, seed: u64) -> TagPopulation {
        let mut rng = rfid_hash::Xoshiro256::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::new();
        let mut tags = Vec::new();
        while tags.len() < n {
            let id = TagId::from_raw(rng.next_u64() as u32, rng.next_u64());
            if seen.insert(id) {
                tags.push((id, BitVec::from_value(1, 1)));
            }
        }
        TagPopulation::new(tags)
    }

    #[test]
    fn identifies_every_tag() {
        let mut ctx = SimContext::new(random_population(300, 1), &SimConfig::paper(1));
        let report = QueryTree::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 300);
    }

    #[test]
    fn query_count_is_about_2_9_per_tag() {
        // The classical expected query count for QT on uniform IDs.
        let n = 2_000;
        let mut ctx = SimContext::new(random_population(n, 2), &SimConfig::paper(2));
        let report = QueryTree::default().run(&mut ctx);
        let queries =
            report.counters.polls + report.counters.empty_slots + report.counters.collision_slots;
        let per_tag = queries as f64 / n as f64;
        assert!(
            (2.5..=3.3).contains(&per_tag),
            "queries per tag = {per_tag} (expected ≈ 2.9)"
        );
    }

    #[test]
    fn clustered_ids_are_fine_too() {
        // Shared prefixes deepen the tree but never break it.
        let tags: Vec<_> = (0..200u64)
            .map(|i| (TagId::from_fields(0x30, 1, 1, i), BitVec::from_value(1, 1)))
            .collect();
        let mut ctx = SimContext::new(TagPopulation::new(tags), &SimConfig::paper(3));
        let report = QueryTree::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 200);
    }

    #[test]
    fn single_tag_identified_without_collisions() {
        let mut ctx = SimContext::new(random_population(1, 4), &SimConfig::paper(4));
        let report = QueryTree::default().run(&mut ctx);
        assert_eq!(report.counters.polls, 1);
        assert_eq!(report.counters.collision_slots, 0);
    }

    #[test]
    fn survives_reply_loss_with_verification() {
        // Without verification a masked collision (all-but-one replies
        // lost) prunes a subtree that still holds tags; with it, QT stays
        // complete on a lossy channel.
        let cfg = SimConfig::paper(5).with_channel(Channel::lossy(0.2));
        let mut ctx = SimContext::new(random_population(150, 5), &cfg);
        let qt = QueryTree::new(QueryTreeConfig {
            verify_singletons: true,
            ..QueryTreeConfig::default()
        });
        let report = qt.run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 150);
        assert!(report.counters.lost_replies > 0);
    }

    #[test]
    fn verification_costs_one_extra_query_per_tag_when_clean() {
        let n = 400;
        let mut ctx = SimContext::new(random_population(n, 9), &SimConfig::paper(9));
        let plain = QueryTree::default().run(&mut ctx);
        let mut ctx2 = SimContext::new(random_population(n, 9), &SimConfig::paper(9));
        let verified = QueryTree::new(QueryTreeConfig {
            verify_singletons: true,
            ..QueryTreeConfig::default()
        })
        .run(&mut ctx2);
        let extra = verified.counters.empty_slots - plain.counters.empty_slots;
        assert_eq!(extra, n as u64, "one verification query per read tag");
    }

    #[test]
    fn identification_is_far_slower_than_polling() {
        // The paper's premise in one assertion.
        let n = 500;
        let mut ctx = SimContext::new(random_population(n, 6), &SimConfig::paper(6));
        let qt = QueryTree::default().run(&mut ctx);
        let pop = random_population(n, 6);
        let mut ctx2 = SimContext::new(pop, &SimConfig::paper(6));
        let tpp = rfid_protocols::TppConfig::default()
            .into_protocol()
            .run(&mut ctx2);
        assert!(
            qt.total_time > tpp.total_time * 4.0,
            "QT {} vs TPP {}",
            qt.total_time,
            tpp.total_time
        );
    }
}
