//! Randomized binary splitting (Capetanakis-style collision resolution).
//!
//! Tags keep a counter, initially 0. In each slot, counter-zero tags reply
//! with their full ID:
//!
//! * **collision** — every counter-zero tag flips a fair coin: heads stay
//!   at 0, tails go to 1; everyone else increments,
//! * **success / empty** — everyone decrements.
//!
//! The reader only broadcasts a feedback trit (modelled as a 4-bit slot
//! command), and the random coins come from the tags — unlike Query Tree,
//! no prefix is transmitted, at the price of tag-side state. Expected slot
//! count is ≈ 2.89 per tag, like QT, but the slot layout differs.

use rfid_c1g2::TimeCategory;
use rfid_protocols::{PollingProtocol, ProtocolStepper, StallCause, StepDiscipline, StepOutcome};
use rfid_system::id::EPC_BITS;
use rfid_system::{Json, JsonError, SimContext, SlotOutcome, ToJson};

/// Binary-splitting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinarySplitConfig {
    /// Feedback/command bits per slot.
    pub command_bits: u64,
    /// CRC bits appended to ID replies.
    pub reply_crc_bits: u64,
    /// Safety cap on slots.
    pub max_slots: u64,
}

impl Default for BinarySplitConfig {
    fn default() -> Self {
        BinarySplitConfig {
            command_bits: 4,
            reply_crc_bits: 16,
            max_slots: 100_000_000,
        }
    }
}

impl BinarySplitConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> BinarySplit {
        BinarySplit { cfg: self }
    }
}

/// The binary-splitting identification protocol.
#[derive(Debug, Clone, Default)]
pub struct BinarySplit {
    cfg: BinarySplitConfig,
}

impl BinarySplit {
    /// Creates binary splitting with the given configuration.
    pub fn new(cfg: BinarySplitConfig) -> Self {
        BinarySplit { cfg }
    }
}

impl PollingProtocol for BinarySplit {
    fn name(&self) -> &'static str {
        "BinSplit"
    }

    fn open_stepper(&self, ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(BinSplitStepper::open(self.cfg, ctx))
    }

    fn resume_stepper(
        &self,
        ctx: &SimContext,
        state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        let mut stepper = BinSplitStepper::open(self.cfg, ctx);
        stepper.slots = state.field("slots")?;
        let groups: Vec<Vec<usize>> = state.field("groups")?;
        // The groups partition the still-active tags: every handle must be
        // in range, active, and appear exactly once.
        let n = ctx.population.len();
        let active_words = ctx.population.active_words();
        let mut seen = vec![0u64; n.div_ceil(64)];
        let mut remaining = 0usize;
        for group in &groups {
            for &h in group {
                if h >= n || (active_words[h >> 6] >> (h & 63)) & 1 == 0 {
                    return Err(JsonError(format!(
                        "BinSplit group member {h} is not an active tag handle"
                    )));
                }
                if (seen[h >> 6] >> (h & 63)) & 1 == 1 {
                    return Err(JsonError(format!(
                        "BinSplit group member {h} appears in two groups"
                    )));
                }
                seen[h >> 6] |= 1 << (h & 63);
                remaining += 1;
            }
        }
        stepper.groups = groups;
        stepper.remaining = remaining;
        Ok(Box::new(stepper))
    }
}

/// Pops the next level to counter zero and folds the zero-counter
/// remnant into it, keeping ascending handle order.
fn merge_down(groups: &mut Vec<Vec<usize>>, remnant: Vec<usize>, pool: &mut Vec<Vec<usize>>) {
    if remnant.is_empty() {
        pool.push(remnant);
        return;
    }
    match groups.pop() {
        None => groups.push(remnant),
        Some(next) if next.is_empty() => {
            pool.push(next);
            groups.push(remnant);
        }
        Some(next) => {
            let mut merged = pool.pop().unwrap_or_default();
            let (mut i, mut j) = (0, 0);
            while i < remnant.len() && j < next.len() {
                if remnant[i] < next[j] {
                    merged.push(remnant[i]);
                    i += 1;
                } else {
                    merged.push(next[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&remnant[i..]);
            merged.extend_from_slice(&next[j..]);
            for mut used in [remnant, next] {
                used.clear();
                pool.push(used);
            }
            groups.push(merged);
        }
    }
}

/// One step = one slot.
///
/// The per-tag counters obey a stack discipline: the counter-zero tags are
/// the top group, a collision splits the top in two, and a success/empty
/// slot pops one level (zero-counter stragglers — the saturating decrement
/// — merge into the level below). Simulating the stack directly makes a
/// slot cost O(|top group|) instead of O(remaining tags). Every group stays
/// in ascending handle order so the tag-side coin flips consume the rng in
/// exactly the per-handle order the dense counter map used to —
/// run-for-run identical.
struct BinSplitStepper {
    cfg: BinarySplitConfig,
    reply_bits: u64,
    groups: Vec<Vec<usize>>,
    pool: Vec<Vec<usize>>,
    remaining: usize,
    slots: u64,
}

impl BinSplitStepper {
    fn open(cfg: BinarySplitConfig, ctx: &SimContext) -> Self {
        let mut first: Vec<usize> = Vec::new();
        ctx.population.collect_active_into(&mut first);
        let remaining = first.len();
        BinSplitStepper {
            cfg,
            reply_bits: EPC_BITS as u64 + cfg.reply_crc_bits,
            groups: vec![first],
            pool: Vec::new(),
            remaining,
            slots: 0,
        }
    }
}

impl ProtocolStepper for BinSplitStepper {
    fn discipline(&self) -> StepDiscipline {
        // The slot cap below subsumes both the round budget and the stall
        // guard.
        StepDiscipline::self_limited()
    }

    fn done(&self, _ctx: &SimContext) -> bool {
        self.remaining == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        let reply_bits = self.reply_bits;
        self.slots += 1;
        if self.slots >= self.cfg.max_slots {
            return StepOutcome::Stalled(StallCause::RoundCap);
        }
        // Everyone below the top sits the slot out. An empty top (every
        // zero tag flipped away, or losses) still burns a slot via the
        // empty-slot rule below — same as the dense-counter version.
        let outcome = ctx.slot(
            self.groups
                .last()
                .expect("unidentified tags live in some group"),
            self.cfg.command_bits,
        );
        match outcome {
            SlotOutcome::Collision(_) => {
                // `slot` charged the payload-length occupancy; top it up
                // to the full ID+CRC burst the colliding tags sent.
                let top = self.groups.last().expect("collision from the top group");
                let charged = top
                    .iter()
                    .map(|&t| ctx.population.get(t).info.len() as u64)
                    .max()
                    .unwrap_or(0);
                ctx.wait(
                    TimeCategory::WastedSlot,
                    ctx.link.tag_tx(reply_bits.saturating_sub(charged)),
                );
                let mut old = self.groups.pop().expect("collision from the top group");
                let mut stay = self.pool.pop().unwrap_or_default();
                let mut moved = self.pool.pop().unwrap_or_default();
                for &h in &old {
                    if ctx.rng.chance(0.5) {
                        moved.push(h);
                    } else {
                        stay.push(h);
                    }
                }
                old.clear();
                self.pool.push(old);
                self.groups.push(moved);
                self.groups.push(stay);
            }
            SlotOutcome::Singleton(tag) => {
                let top_up = reply_bits - ctx.population.get(tag).info.len() as u64;
                ctx.counters.tag_bits += top_up;
                ctx.trace(|| rfid_system::Event::TagReply { tag, bits: top_up });
                ctx.wait(TimeCategory::TagReply, ctx.link.tag_tx(top_up));
                ctx.mark_read(tag);
                self.remaining -= 1;
                let mut old = self.groups.pop().expect("singleton from the top group");
                old.retain(|&h| h != tag);
                merge_down(&mut self.groups, old, &mut self.pool);
            }
            SlotOutcome::Empty => {
                let old = self
                    .groups
                    .pop()
                    .expect("unidentified tags live in some group");
                merge_down(&mut self.groups, old, &mut self.pool);
            }
            SlotOutcome::Corrupted(_) => {
                // CRC failure on a lone reply: leave every counter in
                // place so the same tag retries next slot. Splitting
                // here would descend forever on one unlucky tag.
            }
        }
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(vec![
            ("slots".into(), self.slots.to_json()),
            ("groups".into(), self.groups.to_json()),
        ])
    }

    fn reset(&mut self, ctx: &SimContext) {
        for mut group in self.groups.drain(..) {
            group.clear();
            self.pool.push(group);
        }
        let mut first = self.pool.pop().unwrap_or_default();
        ctx.population.collect_active_into(&mut first);
        self.remaining = first.len();
        self.groups.push(first);
        self.slots = 0;
    }
}

rfid_system::impl_json_struct!(BinarySplitConfig {
    command_bits,
    reply_crc_bits,
    max_slots
});

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_protocols::Report;
    use rfid_system::{BitVec, Channel, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = BinarySplit::default().run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn identifies_every_tag() {
        let (report, ctx) = run(400, 1);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 400);
    }

    #[test]
    fn slot_count_is_about_2_9_per_tag() {
        let n = 2_000;
        let (report, _) = run(n, 2);
        let slots =
            report.counters.polls + report.counters.empty_slots + report.counters.collision_slots;
        let per_tag = slots as f64 / n as f64;
        assert!(
            (2.3..=3.4).contains(&per_tag),
            "slots per tag = {per_tag} (expected ≈ 2.9)"
        );
    }

    #[test]
    fn single_tag_is_one_slot() {
        let (report, _) = run(1, 3);
        assert_eq!(report.counters.polls, 1);
        assert_eq!(report.counters.collision_slots, 0);
    }

    #[test]
    fn survives_reply_loss() {
        let pop = TagPopulation::sequential(150, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(4).with_channel(Channel::lossy(0.2));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = BinarySplit::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 150);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = run(300, 5);
        let (b, _) = run(300, 5);
        assert_eq!(a.total_time, b.total_time);
    }
}
