//! JSON round-trips for the identification-baseline configs.

use rfid_identify::{BinarySplitConfig, QAlgorithmConfig, QueryTreeConfig};
use rfid_system::{from_json_str, to_json_string, FromJson, ToJson};

fn round_trip<T>(value: &T)
where
    T: ToJson + FromJson + PartialEq + std::fmt::Debug,
{
    let compact = to_json_string(value);
    let back: T = from_json_str(&compact).expect("compact parse");
    assert_eq!(&back, value, "compact round-trip for {compact}");
    let pretty = value.to_json().to_pretty_string();
    let back: T = from_json_str(&pretty).expect("pretty parse");
    assert_eq!(&back, value, "pretty round-trip");
}

#[test]
fn query_tree_config_round_trips() {
    round_trip(&QueryTreeConfig::default());
    round_trip(&QueryTreeConfig {
        command_bits: 24,
        reply_crc_bits: 0,
        verify_singletons: true,
    });
}

#[test]
fn binary_split_config_round_trips() {
    round_trip(&BinarySplitConfig::default());
    round_trip(&BinarySplitConfig {
        command_bits: 8,
        reply_crc_bits: 16,
        max_slots: 50_000,
    });
}

#[test]
fn q_algorithm_config_round_trips() {
    round_trip(&QAlgorithmConfig::default());
    round_trip(&QAlgorithmConfig {
        initial_q: 6,
        c: 0.35,
        max_slots: 123_456,
    });
}
