//! # rfid-baselines — the protocols the paper compares against
//!
//! Every comparator in the evaluation of *Fast RFID Polling Protocols*,
//! implemented on the same [`rfid_system::SimContext`] substrate as the
//! paper's own protocols:
//!
//! * [`cpp::Cpp`] — **Conventional Polling**: broadcast the full 96-bit tag
//!   ID per poll (Section II-B, the Tables' `CPP` row),
//! * [`ecpp::Ecpp`] — **enhanced CPP**: mask a common ID prefix with a
//!   Select command, then poll with differential bits only — fast exactly
//!   when tag IDs cluster (Section II-B's discussion),
//! * [`cp::CodedPolling`] — **Coded Polling** (Qiao et al., MobiHoc'11):
//!   48-bit CRC-validated codes instead of full IDs,
//! * [`mic::Mic`] — **Multi-hash Information Collection** (Chen et al.,
//!   INFOCOM'11): the state-of-the-art ALOHA-based comparator, `k = 7` hash
//!   functions and a per-slot indicator vector,
//! * [`aloha::Fsa`] — plain (dynamic) framed-slotted ALOHA, the baseline
//!   whose 63.2 % slot waste motivates MIC,
//! * [`lower_bound::LowerBound`] — the C1G2 information-collection lower
//!   bound `(37.45·4 + T1 + 25·l + T2)·n`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aloha;
pub mod cp;
pub mod cpp;
pub mod ecpp;
pub mod lower_bound;
pub mod mic;

pub use aloha::{Fsa, FsaConfig};
pub use cp::{CodedPolling, CodedPollingConfig};
pub use cpp::{Cpp, CppConfig};
pub use ecpp::{Ecpp, EcppConfig};
pub use lower_bound::LowerBound;
pub use mic::{Mic, MicConfig};
