//! MIC — the Multi-hash Information Collection protocol (Chen et al.,
//! INFOCOM 2011), the state-of-the-art comparator of Section V-C.
//!
//! MIC is ALOHA-based: the reader announces a frame of `f` slots and each
//! tag owns `k` candidate slots `H_1(id) … H_k(id)`. Knowing all IDs, the
//! reader resolves tags to slots with a cascade of passes:
//!
//! * pass `j` considers the tags still unresolved after pass `j-1`; any
//!   *unmarked* slot whose pass-`j` candidate set is exactly one tag gets
//!   marked `j` and that tag is resolved;
//! * the reader then broadcasts an **indicator vector** of
//!   `⌈log₂(k+1)⌉` bits per slot (0 = wasted slot, `j` = serviced by `H_j`);
//! * each tag scans its hash functions in order and backscatters in the
//!   first slot `s_j = H_j(id)` with `indicator[s_j] = j`; the cascade
//!   construction makes this rule collision-free;
//! * tags unresolved after `k` passes are collected in the next round.
//!
//! With `k = 7` the wasted-slot fraction drops from basic ALOHA's 63.2 % to
//! ~14 % — but the indicator vector grows with `k` and every tag must
//! implement `k` hash functions (the storage cost Section V-C holds against
//! MIC, vs. the single hash of HPP/EHPP/TPP).

use rfid_c1g2::TimeCategory;
use rfid_hash::HashFamily;
use rfid_protocols::{PollingProtocol, ProtocolStepper, StepDiscipline, StepOutcome};
use rfid_system::{Json, JsonError, SimContext, SlotOutcome};

/// MIC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicConfig {
    /// Number of hash functions per tag (the paper compares against k = 7).
    pub k: usize,
    /// Frame size as a multiple of the unresolved-tag count; MIC's frame
    /// sizing is a free parameter of the original — the default load-1
    /// frame (`1.0`) reproduces the paper's MIC anchors: ≈1.57× the lower
    /// bound at `l = 1` (paper: 1.586×), ≈1.29× at `l = 32` (paper: 1.28×),
    /// and losing to HPP at `n = 100, l = 32` (see EXPERIMENTS.md).
    pub frame_factor: f64,
    /// Reader bits to announce each frame (Query-style round initiation).
    pub round_init_bits: u64,
    /// Safety cap on rounds.
    pub max_rounds: u64,
}

impl Default for MicConfig {
    fn default() -> Self {
        MicConfig {
            k: 7,
            frame_factor: 1.0,
            round_init_bits: 32,
            max_rounds: 1_000_000,
        }
    }
}

impl MicConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> Mic {
        Mic { cfg: self }
    }

    /// Indicator bits per slot: `⌈log₂(k+1)⌉`.
    pub fn indicator_bits_per_slot(&self) -> u64 {
        (usize::BITS - self.k.leading_zeros()) as u64
    }
}

/// One resolved slot: which tag answers and under which hash index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotAssignment {
    /// Tag handle.
    pub tag: usize,
    /// 1-based hash-function index that routed the tag here.
    pub hash_index: usize,
}

/// The Multi-hash Information Collection protocol.
#[derive(Debug, Clone, Default)]
pub struct Mic {
    cfg: MicConfig,
}

/// Reusable cascade state: epoch-stamped per-slot counters plus the
/// unresolved worklist, carried across rounds so the cascade allocates
/// nothing once warm.
#[derive(Debug, Clone, Default)]
struct CascadeScratch {
    unresolved: Vec<usize>,
    stamp: Vec<u32>,
    count: Vec<u32>,
    epoch: u32,
}

impl Mic {
    /// Creates MIC with the given configuration.
    pub fn new(cfg: MicConfig) -> Self {
        Mic { cfg }
    }

    /// Reader-side cascade: resolves active tags into frame slots.
    ///
    /// Returns the per-slot assignment (`None` = wasted slot). Exposed for
    /// tests and the ablation benches.
    pub fn assign(
        family: &HashFamily,
        candidates: &[(usize, Vec<u64>)],
        frame: u64,
    ) -> Vec<Option<SlotAssignment>> {
        let _ = family; // candidate lists are precomputed from it
        let mut slots: Vec<Option<SlotAssignment>> = vec![None; frame as usize];
        let mut unresolved: Vec<usize> = (0..candidates.len()).collect();
        let k = candidates.first().map_or(0, |(_, c)| c.len());
        for j in 0..k {
            if unresolved.is_empty() {
                break;
            }
            // Count pass-j candidates per *unmarked* slot.
            let mut count: std::collections::HashMap<u64, (usize, usize)> =
                std::collections::HashMap::new();
            for &ci in &unresolved {
                let slot = candidates[ci].1[j];
                if slots[slot as usize].is_none() {
                    count
                        .entry(slot)
                        .and_modify(|e| e.1 += 1)
                        .or_insert((ci, 1));
                }
            }
            let mut resolved_now = std::collections::HashSet::new();
            for (&slot, &(ci, c)) in &count {
                if c == 1 {
                    slots[slot as usize] = Some(SlotAssignment {
                        tag: candidates[ci].0,
                        hash_index: j + 1,
                    });
                    resolved_now.insert(ci);
                }
            }
            unresolved.retain(|ci| !resolved_now.contains(ci));
        }
        slots
    }

    /// Flat-buffer cascade used by the run loop: `cand_flat` holds `k`
    /// candidate slots per entry of `handles`, and the per-slot assignment
    /// is written into `slots` (resized to `frame`). Pass counting uses the
    /// epoch-stamped arrays in `scratch`, so steady-state rounds perform no
    /// heap allocation. Produces exactly the [`Mic::assign`] result.
    fn assign_flat(
        scratch: &mut CascadeScratch,
        handles: &[usize],
        cand_flat: &[u64],
        k: usize,
        frame: u64,
        slots: &mut Vec<Option<SlotAssignment>>,
    ) {
        slots.clear();
        slots.resize(frame as usize, None);
        let CascadeScratch {
            unresolved,
            stamp,
            count,
            epoch,
        } = scratch;
        if stamp.len() < frame as usize {
            stamp.resize(frame as usize, 0);
            count.resize(frame as usize, 0);
        }
        unresolved.clear();
        unresolved.extend(0..handles.len());
        for j in 0..k {
            if unresolved.is_empty() {
                break;
            }
            *epoch = match epoch.checked_add(1) {
                Some(e) => e,
                None => {
                    stamp.fill(0);
                    1
                }
            };
            let pass = *epoch;
            // Count pass-j candidates per *unmarked* slot.
            for &ci in unresolved.iter() {
                let s = cand_flat[ci * k + j] as usize;
                if slots[s].is_none() {
                    if stamp[s] != pass {
                        stamp[s] = pass;
                        count[s] = 1;
                    } else {
                        count[s] += 1;
                    }
                }
            }
            // A tag contributes one candidate per pass, so count-1 slots
            // each belong to a distinct unresolved tag: mark and resolve.
            unresolved.retain(|&ci| {
                let s = cand_flat[ci * k + j] as usize;
                let resolved = stamp[s] == pass && count[s] == 1;
                if resolved {
                    slots[s] = Some(SlotAssignment {
                        tag: handles[ci],
                        hash_index: j + 1,
                    });
                }
                !resolved
            });
        }
    }

    /// Tag-side rule: the slot a tag replies in given the indicator vector,
    /// or `None` if it stays silent this frame. Used by tests to prove the
    /// cascade and the tag rule agree.
    pub fn tag_reply_slot(indicator: &[u8], slots_of_tag: &[u64]) -> Option<(usize, u64)> {
        for (j, &slot) in slots_of_tag.iter().enumerate() {
            if indicator[slot as usize] as usize == j + 1 {
                return Some((j + 1, slot));
            }
        }
        None
    }
}

impl PollingProtocol for Mic {
    fn name(&self) -> &'static str {
        "MIC"
    }

    fn open_stepper(&self, ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(MicStepper::open(self.cfg, ctx))
    }

    fn resume_stepper(
        &self,
        ctx: &SimContext,
        _state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        // All serialized state is the context's; the frame buffers are
        // per-step transients and the padding width recomputes from the
        // (immutable) payload lengths.
        Ok(Box::new(MicStepper::open(self.cfg, ctx)))
    }
}

/// One step = one MIC frame (cascade + indicator broadcast + slot walk).
struct MicStepper {
    cfg: MicConfig,
    bits_per_slot: u64,
    payload_bits: u64,
    // Frame buffers reused across rounds: active handles, their flat
    // k-candidate lists, the per-slot assignment, and cascade scratch.
    handles: Vec<usize>,
    cand_flat: Vec<u64>,
    assignment: Vec<Option<SlotAssignment>>,
    scratch: CascadeScratch,
}

impl MicStepper {
    fn open(cfg: MicConfig, ctx: &SimContext) -> Self {
        assert!(cfg.k >= 1, "MIC needs at least one hash function");
        // In a frame, the reader must wait out the full reply window before
        // declaring a slot dead — a wasted slot costs as much air time as a
        // reply slot (slots are fixed-duration in framed ALOHA). This is
        // the timing model under which the paper's Table III shape holds
        // (HPP beats MIC at n = 100, l = 32).
        let payload_bits = ctx
            .population
            .iter()
            .map(|(_, t)| t.info.len())
            .max()
            .unwrap_or(0) as u64;
        MicStepper {
            cfg,
            bits_per_slot: cfg.indicator_bits_per_slot(),
            payload_bits,
            handles: Vec::new(),
            cand_flat: Vec::new(),
            assignment: Vec::new(),
            scratch: CascadeScratch::default(),
        }
    }
}

impl ProtocolStepper for MicStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::budgeted(self.cfg.max_rounds)
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        let unresolved = ctx.population.active_count() as u64;
        let frame = ((unresolved as f64 * self.cfg.frame_factor).ceil() as u64).max(1);
        let seed = ctx.draw_round_seed();
        let family = HashFamily::new(seed, self.cfg.k);
        ctx.begin_round(0, self.cfg.round_init_bits);

        // Both sides compute candidate slots from the same hashes.
        self.handles.clear();
        self.cand_flat.clear();
        {
            let pop = &ctx.population;
            let (ids_hi, ids_lo) = pop.id_words();
            let handles = &mut self.handles;
            let cand_flat = &mut self.cand_flat;
            pop.for_each_active(|handle| {
                handles.push(handle);
                family.slots_into(ids_hi[handle], ids_lo[handle], frame, cand_flat);
            });
        }
        Mic::assign_flat(
            &mut self.scratch,
            &self.handles,
            &self.cand_flat,
            self.cfg.k,
            frame,
            &mut self.assignment,
        );

        // Broadcast the indicator vector.
        ctx.reader_tx(
            rfid_system::BroadcastKind::IndicatorVector,
            frame * self.bits_per_slot,
            TimeCategory::IndicatorVector,
        );

        // Walk the frame: marked slots carry one reply, unmarked slots
        // are the (short) wasted slots MIC could not eliminate.
        for slot in &self.assignment {
            match slot {
                Some(a) => {
                    if let SlotOutcome::Singleton(tag) =
                        ctx.slot(&[a.tag], rfid_c1g2::QUERY_REP_BITS)
                    {
                        ctx.mark_read(tag);
                    }
                }
                None => {
                    ctx.slot(&[], rfid_c1g2::QUERY_REP_BITS);
                    // Pad the empty slot to the full reply window.
                    let pad = ctx.link.tag_tx(self.payload_bits);
                    ctx.wait(TimeCategory::WastedSlot, pad);
                }
            }
        }
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(Vec::new())
    }

    fn reset(&mut self, _ctx: &SimContext) {}
}

rfid_system::impl_json_struct!(MicConfig {
    k,
    frame_factor,
    round_init_bits,
    max_rounds
});

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_protocols::Report;
    use rfid_system::{BitVec, Channel, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64, cfg: MicConfig) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = Mic::new(cfg).run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn collects_from_every_tag() {
        let (report, ctx) = run(1_000, 1, MicConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 1_000);
    }

    #[test]
    fn indicator_width_is_3_bits_for_k7() {
        assert_eq!(MicConfig::default().indicator_bits_per_slot(), 3);
        assert_eq!(
            MicConfig {
                k: 1,
                ..MicConfig::default()
            }
            .indicator_bits_per_slot(),
            1
        );
        assert_eq!(
            MicConfig {
                k: 3,
                ..MicConfig::default()
            }
            .indicator_bits_per_slot(),
            2
        );
    }

    #[test]
    fn k7_wastes_far_fewer_slots_than_k1() {
        let (r7, _) = run(2_000, 2, MicConfig::default());
        let (r1, _) = run(
            2_000,
            2,
            MicConfig {
                k: 1,
                ..MicConfig::default()
            },
        );
        let waste7 =
            r7.counters.empty_slots as f64 / (r7.counters.empty_slots + r7.counters.polls) as f64;
        let waste1 =
            r1.counters.empty_slots as f64 / (r1.counters.empty_slots + r1.counters.polls) as f64;
        assert!(
            waste7 < waste1 / 2.0,
            "waste k=7: {waste7:.3}, k=1: {waste1:.3}"
        );
        // The paper quotes ~13.9 % wasted slots for k = 7 at load ~1.
        assert!(waste7 < 0.25, "waste {waste7}");
    }

    #[test]
    fn flat_cascade_matches_reference_assign() {
        // The run loop's flat-buffer cascade must resolve exactly the same
        // slots as the reference `assign`, including on partially-read
        // populations and across reused scratch.
        let mut pop = TagPopulation::sequential(400, |_| BitVec::from_value(1, 1));
        for i in (0..400).step_by(5) {
            pop.sleep(i);
        }
        let mut scratch = CascadeScratch::default();
        let mut flat_out = Vec::new();
        for seed in 0..6u64 {
            let frame = 450u64;
            let k = 7;
            let family = HashFamily::new(seed, k);
            let candidates: Vec<(usize, Vec<u64>)> = pop
                .iter()
                .filter(|(_, t)| t.is_active())
                .map(|(h, t)| (h, family.slots(t.id.hi(), t.id.lo(), frame)))
                .collect();
            let want = Mic::assign(&family, &candidates, frame);
            let handles: Vec<usize> = candidates.iter().map(|&(h, _)| h).collect();
            let cand_flat: Vec<u64> = candidates.iter().flat_map(|(_, s)| s.clone()).collect();
            Mic::assign_flat(&mut scratch, &handles, &cand_flat, k, frame, &mut flat_out);
            assert_eq!(flat_out, want, "seed {seed}");
        }
    }

    #[test]
    fn cascade_and_tag_rule_agree() {
        // Build one frame by hand and replay the tag-side rule against the
        // broadcast indicator: exactly the assigned tags answer, each alone
        // in its slot.
        let pop = TagPopulation::sequential(500, |_| BitVec::from_value(1, 1));
        let ctx = SimContext::new(pop, &SimConfig::paper(3));
        let frame = 600u64;
        let family = HashFamily::new(42, 7);
        let candidates: Vec<(usize, Vec<u64>)> = ctx
            .population
            .iter()
            .map(|(h, t)| (h, family.slots(t.id.hi(), t.id.lo(), frame)))
            .collect();
        let assignment = Mic::assign(&family, &candidates, frame);
        let indicator: Vec<u8> = assignment
            .iter()
            .map(|s| s.map_or(0, |a| a.hash_index as u8))
            .collect();
        let mut replies: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (handle, slots) in &candidates {
            if let Some((_, slot)) = Mic::tag_reply_slot(&indicator, slots) {
                replies.entry(slot).or_default().push(*handle);
            }
        }
        for (slot, who) in &replies {
            assert_eq!(who.len(), 1, "collision in slot {slot}: {who:?}");
            let assigned = assignment[*slot as usize].expect("reply in unmarked slot");
            assert_eq!(assigned.tag, who[0]);
        }
        // Every assigned slot gets its reply.
        let assigned_count = assignment.iter().flatten().count();
        assert_eq!(replies.len(), assigned_count);
        // k = 7 resolves the lion's share in one frame.
        assert!(
            assigned_count > 450,
            "only {assigned_count} of 500 resolved"
        );
    }

    #[test]
    fn needs_k_hashes_tag_side() {
        // The storage argument of Section V-C: MIC's tag computes k hashes;
        // the family really exposes k distinct members.
        let family = HashFamily::new(7, 7);
        assert_eq!(family.len(), 7);
    }

    #[test]
    fn completes_on_lossy_channel() {
        let pop = TagPopulation::sequential(300, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(4).with_channel(Channel::lossy(0.2));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = Mic::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 300);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = run(400, 5, MicConfig::default());
        let (b, _) = run(400, 5, MicConfig::default());
        assert_eq!(a.total_time, b.total_time);
    }

    #[test]
    fn single_tag_single_slot() {
        let (report, ctx) = run(1, 6, MicConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 1);
    }
}
