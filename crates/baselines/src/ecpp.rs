//! Enhanced CPP — prefix-masked polling (Section II-B).
//!
//! When tags share ID prefixes (tags on the same product class share the
//! 60-bit category), the reader can (1) broadcast a Select masking the
//! common prefix, then (2) poll each tag in the masked subset with only the
//! *differential* bits. The paper notes this "improves the polling
//! performance but relies on the specific distribution of tag IDs" — on
//! uniform IDs the groups degenerate to singletons and the Select overhead
//! makes things worse, which is exactly what the ablation bench shows.

use std::collections::BTreeMap;

use rfid_c1g2::commands::SELECT_FIXED_BITS;
use rfid_c1g2::TimeCategory;
use rfid_protocols::{PollingProtocol, ProtocolStepper, StepDiscipline, StepOutcome};
use rfid_system::{id::EPC_BITS, Json, JsonError, SimContext};

/// Enhanced-CPP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcppConfig {
    /// Prefix length used for grouping (default: the 60-bit category —
    /// header + manager + object class).
    pub prefix_bits: u32,
    /// Groups smaller than this are polled with full IDs instead of paying
    /// a Select (a singleton group would waste the whole command).
    pub min_group: usize,
    /// Safety cap on retry sweeps over a lossy channel.
    pub max_sweeps: u64,
}

impl Default for EcppConfig {
    fn default() -> Self {
        EcppConfig {
            prefix_bits: rfid_system::id::CATEGORY_BITS as u32,
            min_group: 2,
            max_sweeps: 1_000_000,
        }
    }
}

impl EcppConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> Ecpp {
        Ecpp { cfg: self }
    }
}

/// The enhanced (prefix-masked) Conventional Polling Protocol.
#[derive(Debug, Clone, Default)]
pub struct Ecpp {
    cfg: EcppConfig,
}

impl Ecpp {
    /// Creates enhanced CPP with the given configuration.
    pub fn new(cfg: EcppConfig) -> Self {
        Ecpp { cfg }
    }
}

impl PollingProtocol for Ecpp {
    fn name(&self) -> &'static str {
        "eCPP"
    }

    fn open_stepper(&self, _ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(EcppStepper::open(self.cfg))
    }

    fn resume_stepper(
        &self,
        _ctx: &SimContext,
        _state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        Ok(Box::new(EcppStepper::open(self.cfg)))
    }
}

/// One step = one sweep: group the still-active tags by prefix, Select the
/// big groups, poll everyone.
struct EcppStepper {
    cfg: EcppConfig,
    diff_bits: u64,
}

impl EcppStepper {
    fn open(cfg: EcppConfig) -> Self {
        let p = cfg.prefix_bits as usize;
        assert!(p < EPC_BITS, "prefix must leave differential bits");
        EcppStepper {
            cfg,
            diff_bits: (EPC_BITS - p) as u64,
        }
    }
}

impl ProtocolStepper for EcppStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::budgeted(self.cfg.max_sweeps)
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        let p = self.cfg.prefix_bits as usize;
        // Group active tags by their p-bit prefix. BTreeMap gives a
        // deterministic polling order.
        let mut groups: BTreeMap<u128, Vec<usize>> = BTreeMap::new();
        let pop = &ctx.population;
        pop.for_each_active(|handle| {
            groups
                .entry(pop.get(handle).id.as_u128() >> (EPC_BITS - p))
                .or_default()
                .push(handle);
        });
        for (_, members) in groups {
            if members.len() >= self.cfg.min_group {
                // Select masks the shared prefix once...
                ctx.reader_tx(
                    rfid_system::BroadcastKind::Select,
                    SELECT_FIXED_BITS + p as u64,
                    TimeCategory::ReaderCommand,
                );
                // ...then each member costs only the differential bits.
                for handle in members {
                    ctx.poll_tag(self.diff_bits, false, handle);
                }
            } else {
                for handle in members {
                    ctx.poll_tag(EPC_BITS as u64, false, handle);
                }
            }
        }
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(Vec::new())
    }

    fn reset(&mut self, _ctx: &SimContext) {}
}

rfid_system::impl_json_struct!(EcppConfig {
    prefix_bits,
    min_group,
    max_sweeps
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpp::Cpp;
    use rfid_hash::Xoshiro256;
    use rfid_system::{BitVec, SimConfig, TagId, TagPopulation};

    fn clustered_population(n: usize, categories: u32, seed: u64) -> TagPopulation {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::new();
        let mut tags = Vec::new();
        while tags.len() < n {
            let cat = rng.below(categories as u64) as u32;
            let id = TagId::from_fields(0x30, cat, cat, rng.next_u64() & ((1u64 << 36) - 1));
            if seen.insert(id) {
                tags.push((id, BitVec::from_value(1, 1)));
            }
        }
        TagPopulation::new(tags)
    }

    #[test]
    fn reads_everything_on_clustered_ids() {
        let pop = clustered_population(200, 4, 1);
        let mut ctx = SimContext::new(pop, &SimConfig::paper(1));
        let report = Ecpp::default().run(&mut ctx);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 200);
        // Differential vectors: 96 - 60 = 36 bits.
        assert_eq!(report.mean_vector_bits(), 36.0);
    }

    #[test]
    fn beats_cpp_on_clustered_ids() {
        let pop = clustered_population(500, 3, 2);
        let mut ctx_e = SimContext::new(pop.clone(), &SimConfig::paper(2));
        let ecpp = Ecpp::default().run(&mut ctx_e);
        let mut ctx_c = SimContext::new(pop, &SimConfig::paper(2));
        let cpp = Cpp::default().run(&mut ctx_c);
        assert!(
            ecpp.total_time < cpp.total_time,
            "eCPP {} vs CPP {}",
            ecpp.total_time,
            cpp.total_time
        );
    }

    #[test]
    fn paper_claim_still_above_64_bit_effective_cost() {
        // Section II-B: even with a fully shared 32-bit prefix the polling
        // vector stays above 64 bits — far from efficient.
        let pop = clustered_population(100, 1, 3);
        let mut ctx = SimContext::new(pop, &SimConfig::paper(3));
        let cfg = EcppConfig {
            prefix_bits: 32,
            ..EcppConfig::default()
        };
        let report = Ecpp::new(cfg).run(&mut ctx);
        assert_eq!(report.mean_vector_bits(), 64.0);
    }

    #[test]
    fn uniform_ids_fall_back_to_full_id_polls() {
        // Uniform 96-bit IDs almost never share a 60-bit prefix: every
        // group is a singleton, eCPP degenerates to CPP exactly.
        let pop = TagPopulation::new((0..100).map(|i| {
            (
                TagId::from_raw(i as u32 * 40_503_319, (i as u64) << 32 | 0x9E37),
                BitVec::from_value(1, 1),
            )
        }));
        let mut ctx = SimContext::new(pop.clone(), &SimConfig::paper(4));
        let ecpp = Ecpp::default().run(&mut ctx);
        let mut ctx_c = SimContext::new(pop, &SimConfig::paper(4));
        let cpp = Cpp::default().run(&mut ctx_c);
        assert_eq!(ecpp.total_time, cpp.total_time);
        assert_eq!(ecpp.mean_vector_bits(), 96.0);
    }

    #[test]
    fn select_commands_are_charged() {
        let pop = clustered_population(50, 2, 5);
        let mut ctx = SimContext::new(pop, &SimConfig::paper(5));
        let report = Ecpp::default().run(&mut ctx);
        // 2 categories → 2 Selects of (fixed + 60) bits + 50 × 36-bit polls.
        let expect = 2 * (SELECT_FIXED_BITS + 60) + 50 * 36;
        assert_eq!(report.counters.reader_bits, expect);
    }
}
