//! Framed-slotted ALOHA (FSA / DFSA) — the classical baseline whose slot
//! waste motivates both MIC and the paper's polling protocols.
//!
//! Each frame, every unread tag picks a uniform slot; the reader walks all
//! `f` slots and reads the singletons. At the optimal load `f = n` a slot
//! is empty with probability `e⁻¹ ≈ 36.8 %` and collides with probability
//! `1 - 2e⁻¹ ≈ 26.4 %` — the "63.2 % wasted slots" the MIC paper (and
//! Section VI) quote. Dynamic FSA re-sizes each frame to the remaining tag
//! count.

use rfid_hash::TagHash;
use rfid_protocols::{PollingProtocol, ProtocolStepper, StepDiscipline, StepOutcome};
use rfid_system::{Json, JsonError, SimContext, SlotOutcome};

/// FSA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsaConfig {
    /// Frame size as a multiple of the unread-tag count (1.0 = optimal
    /// load; classic DFSA).
    pub frame_factor: f64,
    /// Reader bits to announce each frame.
    pub round_init_bits: u64,
    /// Safety cap on frames.
    pub max_rounds: u64,
}

impl Default for FsaConfig {
    fn default() -> Self {
        FsaConfig {
            frame_factor: 1.0,
            round_init_bits: 32,
            max_rounds: 1_000_000,
        }
    }
}

impl FsaConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> Fsa {
        Fsa { cfg: self }
    }
}

/// Dynamic framed-slotted ALOHA.
#[derive(Debug, Clone, Default)]
pub struct Fsa {
    cfg: FsaConfig,
}

impl Fsa {
    /// Creates FSA with the given configuration.
    pub fn new(cfg: FsaConfig) -> Self {
        Fsa { cfg }
    }
}

impl PollingProtocol for Fsa {
    fn name(&self) -> &'static str {
        "FSA"
    }

    fn open_stepper(&self, ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(FsaStepper::open(self.cfg, ctx))
    }

    fn resume_stepper(
        &self,
        ctx: &SimContext,
        _state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        // The slot padding width is a pure function of the (immutable)
        // payload lengths, recomputed rather than serialized.
        Ok(Box::new(FsaStepper::open(self.cfg, ctx)))
    }
}

/// One step = one DFSA frame.
struct FsaStepper {
    cfg: FsaConfig,
    payload_bits: u64,
}

impl FsaStepper {
    fn open(cfg: FsaConfig, ctx: &SimContext) -> Self {
        // Framed slots are fixed-duration: an empty slot still occupies the
        // full reply window (same convention as MIC's timing model).
        let payload_bits = ctx
            .population
            .iter()
            .map(|(_, t)| t.info.len())
            .max()
            .unwrap_or(0) as u64;
        FsaStepper { cfg, payload_bits }
    }
}

impl ProtocolStepper for FsaStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::budgeted(self.cfg.max_rounds)
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        let payload_bits = self.payload_bits;
        {
            let unread = ctx.population.active_count() as u64;
            let frame = ((unread as f64 * self.cfg.frame_factor).ceil() as u64).max(1);
            let seed = ctx.draw_round_seed();
            let hash = TagHash::new(seed);
            ctx.begin_round(0, self.cfg.round_init_bits);

            // Each tag picks its slot; the reader walks every slot. The
            // frame is laid out as a flat counting sort over recycled
            // buffers (handle/slot pairs, per-slot ends, slot-ordered
            // handles) instead of one Vec per slot.
            let mut pairs = ctx.take_scratch();
            let mut ends = ctx.take_scratch();
            let mut ordered = ctx.take_scratch();
            ends.resize(frame as usize, 0);
            {
                let pop = &ctx.population;
                let (ids_hi, ids_lo) = pop.id_words();
                pop.for_each_active(|handle| {
                    let s = hash.modulo(ids_hi[handle], ids_lo[handle], frame) as usize;
                    pairs.push(handle);
                    pairs.push(s);
                    ends[s] += 1;
                });
            }
            let mut acc = 0usize;
            for c in ends.iter_mut() {
                let n = *c;
                *c = acc;
                acc += n;
            }
            ordered.resize(acc, 0);
            for pair in pairs.chunks_exact(2) {
                ordered[ends[pair[1]]] = pair[0];
                ends[pair[1]] += 1;
            }
            let mut start = 0usize;
            for s in 0..frame as usize {
                let end = ends[s];
                let repliers = &ordered[start..end];
                start = end;
                match ctx.slot(repliers, rfid_c1g2::QUERY_REP_BITS) {
                    SlotOutcome::Singleton(tag) => ctx.mark_read(tag),
                    SlotOutcome::Empty => {
                        let pad = ctx.link.tag_tx(payload_bits);
                        ctx.wait(rfid_c1g2::TimeCategory::WastedSlot, pad);
                    }
                    // A corrupted singleton already burned its slot air time
                    // inside `slot()`; the tag stays active for the next
                    // frame, same as a collision.
                    SlotOutcome::Collision(_) | SlotOutcome::Corrupted(_) => {}
                }
            }
            ctx.recycle_scratch(pairs);
            ctx.recycle_scratch(ends);
            ctx.recycle_scratch(ordered);
        }
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(Vec::new())
    }

    fn reset(&mut self, _ctx: &SimContext) {}
}

rfid_system::impl_json_struct!(FsaConfig {
    frame_factor,
    round_init_bits,
    max_rounds
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mic::{Mic, MicConfig};
    use rfid_protocols::Report;
    use rfid_system::{BitVec, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64, cfg: FsaConfig) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = Fsa::new(cfg).run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn reads_every_tag() {
        let (report, ctx) = run(500, 1, FsaConfig::default());
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 500);
    }

    #[test]
    fn wastes_the_textbook_63_percent_in_the_first_frame() {
        // At load 1, wasted slots (empty + collision) ≈ 63.2 %.
        let pop = TagPopulation::sequential(10_000, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(2));
        // Run exactly one frame by capping rounds at 1 and catching the
        // panic? No — replicate the frame walk inline via the protocol's
        // first iteration: easiest is to run to completion and inspect
        // totals, which preserve the per-frame ratios at load 1.
        let report = Fsa::default().run(&mut ctx);
        let useful = report.counters.polls as f64;
        let wasted = (report.counters.empty_slots + report.counters.collision_slots) as f64;
        let frac = wasted / (useful + wasted);
        assert!(
            (frac - 0.632).abs() < 0.03,
            "wasted fraction {frac} (expected ≈ 0.632)"
        );
    }

    #[test]
    fn mic_beats_plain_fsa() {
        let n = 2_000;
        let (fsa, _) = run(n, 3, FsaConfig::default());
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(3));
        let mic = Mic::new(MicConfig::default()).run(&mut ctx);
        assert!(
            mic.total_time < fsa.total_time,
            "MIC {} vs FSA {}",
            mic.total_time,
            fsa.total_time
        );
    }

    #[test]
    fn oversized_frames_reduce_collisions_but_add_empties() {
        let (tight, _) = run(1_000, 4, FsaConfig::default());
        let (wide, _) = run(
            1_000,
            4,
            FsaConfig {
                frame_factor: 3.0,
                ..FsaConfig::default()
            },
        );
        assert!(wide.counters.collision_slots < tight.counters.collision_slots);
        assert!(wide.counters.empty_slots > tight.counters.empty_slots);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = run(300, 5, FsaConfig::default());
        let (b, _) = run(300, 5, FsaConfig::default());
        assert_eq!(a.total_time, b.total_time);
    }
}
