//! The C1G2 information-collection lower bound (Section V-C).
//!
//! No protocol under the standard can beat the mandatory parts of one
//! exchange per tag: a minimal 4-bit command, the `T1` turnaround, the
//! `l`-bit payload at the tag rate, and `T2` — i.e.
//! `(37.45·4 + T1 + 25·l + T2)·n` µs. Implemented as a pseudo-protocol so
//! table generation treats it uniformly.

use rfid_protocols::{PollingProtocol, ProtocolStepper, StepDiscipline, StepOutcome};
use rfid_system::{Json, JsonError, SimContext};

/// The lower-bound pseudo-protocol: polls each tag with an empty (0-bit)
/// polling vector behind the minimal 4-bit command.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerBound;

impl PollingProtocol for LowerBound {
    fn name(&self) -> &'static str {
        "LowerBound"
    }

    fn open_stepper(&self, _ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(LowerBoundStepper)
    }

    fn resume_stepper(
        &self,
        _ctx: &SimContext,
        _state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        Ok(Box::new(LowerBoundStepper))
    }
}

/// One step = one zero-vector sweep. No sweep cap (the bound is a closed
/// form, not a real protocol); the driver's stall guard still applies.
struct LowerBoundStepper;

impl ProtocolStepper for LowerBoundStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::guarded_unbounded()
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        let mut handles = ctx.take_scratch();
        ctx.population.collect_active_into(&mut handles);
        for &handle in &handles {
            ctx.poll_tag(0, true, handle);
        }
        ctx.recycle_scratch(handles);
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(Vec::new())
    }

    fn reset(&mut self, _ctx: &SimContext) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_analysis::timing::lower_bound;
    use rfid_c1g2::LinkParams;
    use rfid_system::{BitVec, SimConfig, TagPopulation};

    #[test]
    fn matches_the_closed_form() {
        for l in [1usize, 16, 32] {
            let pop = TagPopulation::sequential(100, |_| BitVec::from_value(1, l));
            let mut ctx = SimContext::new(pop, &SimConfig::paper(1));
            let report = LowerBound.run(&mut ctx);
            ctx.assert_complete();
            let expect = lower_bound(&LinkParams::paper(), 100, l as u64);
            assert!(
                (report.total_time.as_f64() - expect.as_f64()).abs() < 1e-6,
                "l = {l}: {} vs {}",
                report.total_time,
                expect
            );
        }
    }

    #[test]
    fn table1_anchor() {
        // ≈ 3.25 s at n = 10⁴, l = 1.
        let pop = TagPopulation::sequential(10_000, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(2));
        let report = LowerBound.run(&mut ctx);
        assert!((report.total_time.as_secs() - 3.248).abs() < 0.001);
    }
}
