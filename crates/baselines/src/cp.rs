//! Coded Polling (Qiao et al., MobiHoc'11) — the closest prior work.
//!
//! CP halves the polling vector "through validating the cyclic redundancy
//! code": instead of the 96-bit ID, the reader broadcasts a 48-bit code
//! derived from the ID; each tag derives its own code and answers when the
//! broadcast matches. The original is closed-source; we reconstruct the
//! code as two CRC-16/CCITT passes plus a 16-bit mixing fold over the EPC
//! (`rfid_c1g2::crc::crc48_code`), with the reader validating uniqueness
//! over its known population — tags whose codes collide (once in ~2⁴⁸ per
//! pair) are polled with their full ID instead. Only the 48-bit vector
//! length matters for the paper's comparisons (DESIGN.md §5.3).

use std::collections::{HashMap, HashSet};

use rfid_c1g2::crc::crc48_code;
use rfid_protocols::{PollingProtocol, ProtocolStepper, StepDiscipline, StepOutcome};
use rfid_system::{id::EPC_BITS, Json, JsonError, SimContext};

/// Coded-Polling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodedPollingConfig {
    /// Safety cap on retry sweeps over a lossy channel.
    pub max_sweeps: u64,
}

impl Default for CodedPollingConfig {
    fn default() -> Self {
        CodedPollingConfig {
            max_sweeps: 1_000_000,
        }
    }
}

impl CodedPollingConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> CodedPolling {
        CodedPolling { cfg: self }
    }
}

/// Number of bits in a CP polling code.
pub const CODE_BITS: u64 = 48;

/// The Coded Polling protocol.
#[derive(Debug, Clone, Default)]
pub struct CodedPolling {
    cfg: CodedPollingConfig,
}

impl CodedPolling {
    /// Creates CP with the given configuration.
    pub fn new(cfg: CodedPollingConfig) -> Self {
        CodedPolling { cfg }
    }
}

impl PollingProtocol for CodedPolling {
    fn name(&self) -> &'static str {
        "CP"
    }

    fn open_stepper(&self, ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(CpStepper::open(self.cfg, ctx))
    }

    fn resume_stepper(
        &self,
        ctx: &SimContext,
        _state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        // The ambiguity set is a pure function of the (immutable) tag IDs,
        // so a resumed stepper recomputes it instead of serializing it.
        Ok(Box::new(CpStepper::open(self.cfg, ctx)))
    }
}

/// One step = one sweep over the still-active tags; ambiguous codes fall
/// back to full-ID polls.
struct CpStepper {
    cfg: CodedPollingConfig,
    ambiguous: HashSet<usize>,
}

impl CpStepper {
    fn open(cfg: CodedPollingConfig, ctx: &SimContext) -> Self {
        // Reader-side validation pass: compute every tag's code and find
        // collisions (those tags must be addressed by full ID).
        let mut by_code: HashMap<u64, Vec<usize>> = HashMap::new();
        for (handle, tag) in ctx.population.iter() {
            by_code
                .entry(crc48_code(&tag.id.to_bytes()))
                .or_default()
                .push(handle);
        }
        let ambiguous = by_code
            .values()
            .filter(|v| v.len() > 1)
            .flatten()
            .copied()
            .collect();
        CpStepper { cfg, ambiguous }
    }
}

impl ProtocolStepper for CpStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::budgeted(self.cfg.max_sweeps)
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        let mut handles = ctx.take_scratch();
        ctx.population.collect_active_into(&mut handles);
        for &handle in &handles {
            let bits = if self.ambiguous.contains(&handle) {
                EPC_BITS as u64
            } else {
                CODE_BITS
            };
            ctx.poll_tag(bits, false, handle);
        }
        ctx.recycle_scratch(handles);
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(Vec::new())
    }

    fn reset(&mut self, _ctx: &SimContext) {}
}

rfid_system::impl_json_struct!(CodedPollingConfig { max_sweeps });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpp::Cpp;
    use rfid_protocols::Report;
    use rfid_system::{BitVec, SimConfig, TagPopulation};

    fn run(n: usize, seed: u64) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = CodedPolling::default().run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn reads_everything_with_48_bit_vectors() {
        let (report, ctx) = run(300, 1);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 300);
        assert_eq!(report.mean_vector_bits(), 48.0);
    }

    #[test]
    fn halves_cpp_reader_bits() {
        let (cp, _) = run(100, 2);
        let pop = TagPopulation::sequential(100, |_| BitVec::from_value(1, 1));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(2));
        let cpp = Cpp::default().run(&mut ctx);
        assert_eq!(cp.counters.reader_bits * 2, cpp.counters.reader_bits);
        assert!(cp.total_time < cpp.total_time);
    }

    #[test]
    fn code_collisions_fall_back_to_full_ids() {
        // Force an artificial "collision" by checking behaviour through the
        // public path: with distinct sequential IDs the 48-bit codes are
        // collision-free, so no fallback occurs (48-bit mean). This pins the
        // uniqueness-validation plumbing.
        let (report, _) = run(2_000, 3);
        assert_eq!(report.mean_vector_bits(), 48.0);
    }

    #[test]
    fn still_far_from_the_proposed_protocols() {
        // The paper's point: 48 bits is an improvement but nowhere near
        // TPP's ~3 bits.
        let (cp, _) = run(500, 4);
        assert!(cp.mean_vector_bits() > 10.0 * 3.1);
    }
}
