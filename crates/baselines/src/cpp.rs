//! The Conventional Polling Protocol (Section II-B).
//!
//! The reader broadcasts a 96-bit tag ID; all tags listen and only the tag
//! whose ID matches replies. One tag per exchange, no collisions ever — but
//! the 96-bit polling vector makes every poll expensive. CPP is the paper's
//! baseline: 37.70 s to collect one bit from 10⁴ tags.

use rfid_protocols::{PollingProtocol, ProtocolStepper, StepDiscipline, StepOutcome};
use rfid_system::{id::EPC_BITS, Json, JsonError, SimContext};

/// CPP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CppConfig {
    /// Whether the ID broadcast rides behind a 4-bit QueryRep. The paper's
    /// CPP accounting treats the bare ID as the command (Table I's 37.70 s
    /// = 37.45·96 + T1 + 25 + T2 per tag), so the default is `false`.
    pub with_query_rep: bool,
    /// Safety cap on retry sweeps over a lossy channel.
    pub max_sweeps: u64,
}

impl Default for CppConfig {
    fn default() -> Self {
        CppConfig {
            with_query_rep: false,
            max_sweeps: 1_000_000,
        }
    }
}

impl CppConfig {
    /// Wraps the config into a runnable protocol.
    pub fn into_protocol(self) -> Cpp {
        Cpp { cfg: self }
    }
}

/// The Conventional Polling Protocol.
#[derive(Debug, Clone, Default)]
pub struct Cpp {
    cfg: CppConfig,
}

impl Cpp {
    /// Creates CPP with the given configuration.
    pub fn new(cfg: CppConfig) -> Self {
        Cpp { cfg }
    }
}

impl PollingProtocol for Cpp {
    fn name(&self) -> &'static str {
        "CPP"
    }

    fn open_stepper(&self, _ctx: &SimContext) -> Box<dyn ProtocolStepper> {
        Box::new(CppStepper { cfg: self.cfg })
    }

    fn resume_stepper(
        &self,
        _ctx: &SimContext,
        _state: &Json,
    ) -> Result<Box<dyn ProtocolStepper>, JsonError> {
        Ok(Box::new(CppStepper { cfg: self.cfg }))
    }
}

/// One step = one full sweep over the still-active ID list.
struct CppStepper {
    cfg: CppConfig,
}

impl ProtocolStepper for CppStepper {
    fn discipline(&self) -> StepDiscipline {
        StepDiscipline::budgeted(self.cfg.max_sweeps)
    }

    fn done(&self, ctx: &SimContext) -> bool {
        ctx.population.active_count() == 0
    }

    fn step(&mut self, ctx: &mut SimContext) -> StepOutcome {
        // The reader walks its known ID list; active tags are the ones
        // not yet read (or whose reply was lost last sweep).
        let mut handles = ctx.take_scratch();
        ctx.population.collect_active_into(&mut handles);
        for &handle in &handles {
            ctx.poll_tag(EPC_BITS as u64, self.cfg.with_query_rep, handle);
        }
        ctx.recycle_scratch(handles);
        StepOutcome::Progressed
    }

    fn state(&self) -> Json {
        Json::Obj(Vec::new())
    }

    fn reset(&mut self, _ctx: &SimContext) {}
}

rfid_system::impl_json_struct!(CppConfig {
    with_query_rep,
    max_sweeps
});

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_protocols::Report;
    use rfid_system::{BitVec, Channel, SimConfig, TagPopulation};

    fn run(n: usize, info_bits: usize, seed: u64) -> (Report, SimContext) {
        let pop = TagPopulation::sequential(n, |_| BitVec::from_value(1, info_bits));
        let mut ctx = SimContext::new(pop, &SimConfig::paper(seed));
        let report = Cpp::default().run(&mut ctx);
        (report, ctx)
    }

    #[test]
    fn reads_every_tag_once() {
        let (report, ctx) = run(100, 1, 1);
        ctx.assert_complete();
        assert_eq!(report.counters.polls, 100);
        assert_eq!(report.mean_vector_bits(), 96.0);
    }

    #[test]
    fn table1_anchor_time() {
        // Table I: 37.70 s for n = 10⁴, l = 1 — scaled down 100× here.
        let (report, _) = run(100, 1, 2);
        let expect_per_tag = 37.45 * 96.0 + 100.0 + 25.0 + 50.0;
        assert!(
            (report.total_time.as_f64() - 100.0 * expect_per_tag).abs() < 1e-6,
            "{}",
            report.total_time
        );
        // Per-tag: 3770.2 µs → ×10⁴ = 37.70 s.
        assert!((expect_per_tag * 1e4 / 1e6 - 37.70).abs() < 0.01);
    }

    #[test]
    fn single_round_no_rounds_counter() {
        let (report, _) = run(10, 1, 3);
        assert_eq!(report.counters.rounds, 0);
        assert_eq!(report.counters.reader_bits, 10 * 96);
    }

    #[test]
    fn lossy_channel_retries_until_done() {
        let pop = TagPopulation::sequential(50, |_| BitVec::from_value(1, 1));
        let cfg = SimConfig::paper(4).with_channel(Channel::lossy(0.4));
        let mut ctx = SimContext::new(pop, &cfg);
        let report = Cpp::default().run(&mut ctx);
        ctx.assert_complete();
        assert!(report.counters.lost_replies > 0);
        assert_eq!(report.counters.polls, 50);
    }

    #[test]
    fn payload_length_only_affects_tag_side() {
        let (r1, _) = run(20, 1, 5);
        let (r32, _) = run(20, 32, 5);
        let diff = r32.total_time - r1.total_time;
        assert!((diff.as_f64() - 20.0 * 25.0 * 31.0).abs() < 1e-6);
    }
}
