//! JSON round-trips for every baseline config that used to derive serde.

use rfid_baselines::{CodedPollingConfig, CppConfig, EcppConfig, FsaConfig, MicConfig};
use rfid_system::{from_json_str, to_json_string, FromJson, ToJson};

fn round_trip<T>(value: &T)
where
    T: ToJson + FromJson + PartialEq + std::fmt::Debug,
{
    let compact = to_json_string(value);
    let back: T = from_json_str(&compact).expect("compact parse");
    assert_eq!(&back, value, "compact round-trip for {compact}");
    let pretty = value.to_json().to_pretty_string();
    let back: T = from_json_str(&pretty).expect("pretty parse");
    assert_eq!(&back, value, "pretty round-trip");
}

#[test]
fn fsa_config_round_trips() {
    round_trip(&FsaConfig::default());
    round_trip(&FsaConfig {
        frame_factor: 1.5,
        round_init_bits: 48,
        max_rounds: 1_000,
    });
}

#[test]
fn coded_polling_config_round_trips() {
    round_trip(&CodedPollingConfig::default());
    round_trip(&CodedPollingConfig { max_sweeps: 7 });
}

#[test]
fn cpp_config_round_trips() {
    round_trip(&CppConfig::default());
    round_trip(&CppConfig {
        with_query_rep: false,
        max_sweeps: 3,
    });
}

#[test]
fn ecpp_config_round_trips() {
    round_trip(&EcppConfig::default());
    round_trip(&EcppConfig {
        prefix_bits: 9,
        min_group: 4,
        max_sweeps: 12,
    });
}

#[test]
fn mic_config_round_trips() {
    round_trip(&MicConfig::default());
    round_trip(&MicConfig {
        k: 5,
        frame_factor: 0.875,
        round_init_bits: 64,
        max_rounds: 200,
    });
}
